//go:build chaos

package chaostest

import (
	"flag"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	dq "repro"
	"repro/internal/chaos"
	"repro/internal/core"
)

// chaosSeeds lets scripts/chaos.sh sweep externally chosen seeds:
// go test -tags chaos -run Sweep -chaos.seeds=1,2,3 ./internal/chaostest
var chaosSeeds = flag.String("chaos.seeds", "", "comma-separated schedule seeds to sweep (default: built-in set)")

func seeds(t *testing.T) []uint64 {
	if *chaosSeeds == "" {
		return []uint64{1, 42, 0xDEADBEEF, 0x5EED5EED}
	}
	var out []uint64
	for _, f := range strings.Split(*chaosSeeds, ",") {
		n, err := strconv.ParseUint(strings.TrimSpace(f), 0, 64)
		if err != nil {
			t.Fatalf("bad -chaos.seeds entry %q: %v", f, err)
		}
		out = append(out, n)
	}
	return out
}

// failEverywhere builds a schedule that forces failures at every named
// point with a seeded probability. Probabilistic (not periodic) forcing is
// deliberate: a fixed cadence resonates with retry loops that revisit a
// point a fixed number of times per attempt — e.g. FailEvery=2 at Oracle
// starves any walk needing two consecutive successful hops forever —
// whereas per-visit pseudo-random decisions always let a retry through
// eventually, while still being exactly reproducible per seed.
func failEverywhere(seed uint64) *chaos.Schedule {
	s := chaos.NewSchedule(seed)
	for i, p := range chaos.AllPoints() {
		r := chaos.Rule{FailProb: 0.20 + float64((seed+uint64(i))%3)*0.05}
		if p == chaos.Oracle || p == chaos.H {
			// High-frequency points also get a small seeded delay, jittering
			// the interleaving between forced failures.
			r.DelaySpins = 64
		}
		s.Set(p, r)
	}
	return s
}

// driveAllStates runs a single-threaded op pattern over a tiny-node core
// deque that reaches every transition class: interior pushes and pops (L1,
// L2, E1), border crossings in both directions (L3, L6 on the way out; L4,
// L5, L7, E2, E3 on the way back), plus hint publishes and oracle walks on
// every operation. Forced failures perturb the path but every op completes,
// so the pattern is self-restoring. Returns the number of values resident
// when done (always 0: the pattern is balanced and over-pops).
func driveAllStates(t *testing.T, d *core.Deque, h *core.Handle, rounds int) {
	v := uint32(1)
	expect := 0
	// A push that needs a fresh node can get a forced RegistryAlloc failure
	// and surface ErrFull — graceful degradation, not a bug. The schedule's
	// cadence is >= 2, so an immediate retry allocates; anything else is a
	// real failure.
	push := func(r int, f func(*core.Handle, uint32) error) {
		for a := 0; ; a++ {
			err := f(h, v)
			if err == nil {
				v++
				expect++
				return
			}
			if err != core.ErrFull || a >= 16 {
				t.Fatalf("round %d: push: %v (attempt %d)", r, err, a+1)
			}
		}
	}
	popL := func() {
		if _, ok := d.PopLeft(h); ok {
			expect--
		}
	}
	popR := func() {
		if _, ok := d.PopRight(h); ok {
			expect--
		}
	}
	pushL := func() { push(0, d.PushLeft) }
	pushR := func() { push(0, d.PushRight) }
	for r := 0; r < rounds; r++ {
		// Bulk growth and drain on each side: interior pushes/pops (L1, L2),
		// appends (L6), and the seal/remove/boundary progression on the way
		// back (L5, L7, L4), overshooting into empty (E1).
		for i := 0; i < 7; i++ {
			pushL()
		}
		for i := 0; i < 9; i++ {
			popL()
		}
		for i := 0; i < 7; i++ {
			pushR()
		}
		for i := 0; i < 9; i++ {
			popR()
		}
		// Straddling push (L3): append a node, pop it empty again, then push
		// while the empty neighbor is still linked — the push lands in the
		// neighbor's innermost slot.
		pushL()
		pushL()
		popL()
		pushL()
		popL()
		popL()
		popL()
		pushR()
		pushR()
		popR()
		pushR()
		popR()
		popR()
		popR()
		// Straddling empty check (E2): drain cross-side so the edge slot
		// reads the other side's null while the empty neighbor is linked,
		// then pop into the straddle.
		pushL()
		pushL()
		popR()
		popL()
		popL()
		popL()
		pushR()
		pushR()
		popL()
		popR()
		popR()
		popR()
		// Boundary empty check (E3): a cross-side pop leaves the other
		// side's null in the outermost data slot with no neighbor; the next
		// same-side pop confirms empty at the boundary.
		pushL()
		popR()
		popL()
		pushR()
		popL()
		popR()
		if expect != 0 {
			t.Fatalf("round %d: drove %d values unaccounted", r, expect)
		}
		if got := d.Len(); got != 0 {
			t.Fatalf("round %d: Len = %d after balanced round", r, got)
		}
	}
}

// TestSeededSweepCoverage is the acceptance gate for the injection-point
// wiring: for each seed, a schedule forcing periodic failures at every named
// point must observe at least one visit AND at least one forced failure at
// every point — proving every labeled CAS, re-read, publish, walk step,
// cache read, and allocation actually flows through chaos.Visit — while
// every operation still completes and the deque stays consistent.
func TestSeededSweepCoverage(t *testing.T) {
	for _, seed := range seeds(t) {
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			// Construct before arming: a forced RegistryAlloc failure during
			// construction (where there is no caller to hand ErrFull to)
			// would panic, and that interleaving is unreachable in real use.
			d := core.New(core.Config{NodeSize: core.MinNodeSize, MaxThreads: 4})
			h := d.Register()
			g := dq.New[int](dq.WithNodeSize(8))
			gh := g.Register()
			// Epoch-mode recycling deque: its node churn flows through the
			// Retire hand-off, EpochAdvance attempts, and PoolGet reuse
			// points (hazard mode shares Retire/PoolGet, so one recycling
			// config covers all three).
			dr := core.New(core.Config{NodeSize: core.MinNodeSize, MaxThreads: 4,
				Reclaim: core.ReclaimEpoch, PoolNodes: 8})
			hr := dr.Register()

			s := failEverywhere(seed)
			chaos.Arm(s)
			defer chaos.Disarm()

			// Core driver: all transition, empty-check, hint, oracle, cache,
			// and registry-allocation points.
			driveAllStates(t, d, h, 40)
			if err := d.CheckInvariant(); err != nil {
				t.Fatalf("invariant after sweep: %v", err)
			}

			// Reclamation layer: forced Retire failures defer batches,
			// forced EpochAdvance failures stall grace, forced PoolGet
			// failures miss the pool — all degrade to fresh allocation or
			// later reclamation, never to lost values.
			driveAllStates(t, dr, hr, 40)
			hr.Drain()
			if err := dr.CheckInvariant(); err != nil {
				t.Fatalf("invariant after recycling sweep: %v", err)
			}

			// Helping layer: a low-threshold helping deque under two
			// concurrent workers reaches Announce (a streak of 4 consecutive
			// forced failures trips it), Claim (the announcer's self-claim
			// and the helper's claim race), and Help (a handle's throttled
			// poll finding a pending announcement). Concurrency is required
			// — Help fires only while some OTHER handle's op is announced —
			// so the segment runs until all three points record forced
			// failures rather than for a fixed round count.
			dh := core.New(core.Config{NodeSize: core.MinNodeSize, MaxThreads: 4,
				WatchdogThreshold: 2, Helping: true})
			var (
				stop   atomic.Bool
				hwg    sync.WaitGroup
				pushes [2]int
				pops   [2]int
			)
			for w := 0; w < 2; w++ {
				hwg.Add(1)
				go func(w int) {
					defer hwg.Done()
					hh := dh.Register()
					v := uint32(w+1) << 24
					for !stop.Load() {
						v++
						for a := 0; ; a++ {
							var err error
							if w == 0 {
								err = dh.PushLeft(hh, v)
							} else {
								err = dh.PushRight(hh, v)
							}
							if err == nil {
								pushes[w]++
								break
							}
							if err != core.ErrFull || a >= 16 {
								t.Errorf("helping worker %d: push: %v", w, err)
								return
							}
						}
						var ok bool
						if w == 0 {
							_, ok = dh.PopRight(hh)
						} else {
							_, ok = dh.PopLeft(hh)
						}
						if ok {
							pops[w]++
						}
					}
				}(w)
			}
			helpPts := []chaos.Point{chaos.Announce, chaos.Help, chaos.Claim}
			for wait := 0; wait < 4000; wait++ {
				covered := true
				for _, p := range helpPts {
					if s.Stats(p).Failures == 0 {
						covered = false
					}
				}
				if covered {
					break
				}
				time.Sleep(time.Millisecond)
			}
			stop.Store(true)
			hwg.Wait()
			hd := dh.Register()
			drained := 0
			for {
				if _, ok := dh.PopLeft(hd); !ok {
					break
				}
				drained++
			}
			if err := dh.CheckInvariant(); err != nil {
				t.Fatalf("invariant after helping sweep: %v", err)
			}
			if total := pops[0] + pops[1] + drained; total != pushes[0]+pushes[1] {
				t.Fatalf("helping sweep conservation: %d values out, %d in",
					total, pushes[0]+pushes[1])
			}

			// Generic layer: the slab-allocation point. Forced SlabAlloc
			// failures surface as ErrFull and must not lose values.
			pushed := 0
			for i := 0; i < 32; i++ {
				err := gh.PushRight(i)
				if err == nil {
					pushed++
				} else if err != dq.ErrFull {
					t.Fatalf("generic push: %v", err)
				}
			}
			for i := 0; i < pushed; i++ {
				if _, ok := gh.PopLeft(); !ok {
					t.Fatalf("generic deque lost values: popped %d of %d", i, pushed)
				}
			}

			chaos.Disarm()
			for _, p := range chaos.AllPoints() {
				st := s.Stats(p)
				if st.Visits == 0 {
					t.Errorf("point %v: never visited", p)
				}
				if st.Failures == 0 {
					t.Errorf("point %v: visited %d times, no failure forced", p, st.Visits)
				}
			}
		})
	}
}

// TestChaosConservationConcurrent runs a concurrent mixed workload — singles
// and batches, both ends, through the public generic API — under a
// fail-everywhere schedule and checks conservation: every value whose push
// reported success is popped exactly once, every value whose push reported
// ErrFull is never seen, nothing is invented.
func TestChaosConservationConcurrent(t *testing.T) {
	for _, seed := range seeds(t) {
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			d := dq.New[uint64](dq.WithNodeSize(4), dq.WithMaxThreads(16))
			s := failEverywhere(seed)
			chaos.Arm(s)
			defer chaos.Disarm()

			const workers = 4
			iters := 600
			if testing.Short() {
				iters = 150
			}
			pushedOK := make([][]uint64, workers)
			popped := make([][]uint64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := d.Register()
					defer h.Flush()
					seq := uint64(0)
					newv := func() uint64 {
						seq++
						return uint64(w+1)<<32 | seq
					}
					vs := make([]uint64, 3)
					dst := make([]uint64, 4)
					for i := 0; i < iters; i++ {
						switch i % 7 {
						case 0:
							if v := newv(); h.PushLeft(v) == nil {
								pushedOK[w] = append(pushedOK[w], v)
							}
						case 1:
							if v := newv(); h.PushRight(v) == nil {
								pushedOK[w] = append(pushedOK[w], v)
							}
						case 2, 3:
							for j := range vs {
								vs[j] = newv()
							}
							var n int
							if i%7 == 2 {
								n, _ = h.PushLeftN(vs)
							} else {
								n, _ = h.PushRightN(vs)
							}
							pushedOK[w] = append(pushedOK[w], vs[:n]...)
						case 4:
							if v, ok := h.PopLeft(); ok {
								popped[w] = append(popped[w], v)
							}
						case 5:
							if v, ok := h.PopRight(); ok {
								popped[w] = append(popped[w], v)
							}
						case 6:
							n := h.PopLeftN(dst)
							popped[w] = append(popped[w], dst[:n]...)
						}
					}
				}(w)
			}
			wg.Wait()
			chaos.Disarm()

			want := make(map[uint64]bool)
			for _, vs := range pushedOK {
				for _, v := range vs {
					if want[v] {
						t.Fatalf("value %#x pushed-ok twice", v)
					}
					want[v] = true
				}
			}
			recover := func(v uint64) {
				if !want[v] {
					t.Fatalf("value %#x popped but never successfully pushed", v)
				}
				delete(want, v)
			}
			for _, vs := range popped {
				for _, v := range vs {
					recover(v)
				}
			}
			h := d.Register()
			for {
				v, ok := h.PopLeft()
				if !ok {
					break
				}
				recover(v)
			}
			if len(want) != 0 {
				t.Fatalf("%d successfully pushed values lost (e.g. missing one of %v)", len(want), firstKey(want))
			}
		})
	}
}

func firstKey(m map[uint64]bool) uint64 {
	for k := range m {
		return k
	}
	return 0
}
