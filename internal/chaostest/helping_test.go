//go:build chaos

package chaostest

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
)

// These tests pin the helping layer's two headline properties under the
// parked-goroutine adversary:
//
//   - The starvation bound: once a handle announces its op, the op
//     completes within one poll interval of ANY active handle (16 ops,
//     core's helpPollInterval) plus that handle's claim budget — even if
//     the announcer itself never runs again until the end.
//   - Exactly-once: an announced op linearizes at most once, and a *Ctx op
//     whose context expires while announced either cancels cleanly (the op
//     provably never happened) or completes normally (a helper got there
//     first) — never both, never twice.

// helpPollInterval mirrors core's unexported constant: how many ops a
// handle starts between announcement-array polls. The bound asserted below
// breaks (loudly) if the two drift apart.
const helpPollInterval = 16

// helpingConfig is a helping-enabled deque with a low watchdog threshold so
// a small forced-failure budget reaches the announce streak (2x threshold).
func helpingConfig(watchdog int, reclaim core.ReclaimPolicy) core.Config {
	return core.Config{
		NodeSize:          core.MinNodeSize,
		MaxThreads:        4,
		WatchdogThreshold: watchdog,
		Helping:           true,
		Reclaim:           reclaim,
	}
}

// waitParked blocks until exactly n goroutines are parked on s.
func waitParked(t *testing.T, s *chaos.Schedule, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.ParkedNow() != n {
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d parked goroutines (parked=%d)", n, s.ParkedNow())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestHelpBoundParkedAnnouncer is the starvation-bound schedule verify.sh
// gates on. The adversary: force a handle's push to lose 16 straight races
// (2x the watchdog threshold of 8, tripping the announce path), then park
// the announcer at its self-claim — the strongest schedule the paper's
// obstruction-free model allows, a thread suspended indefinitely right
// after publishing its op. A second handle then runs ordinary ops, and the
// announced push must complete within one poll interval (16 ops) of that
// handle — the documented bound — after which the released announcer
// observes Done and returns success exactly once.
func TestHelpBoundParkedAnnouncer(t *testing.T) {
	for _, rc := range []struct {
		name string
		p    core.ReclaimPolicy
	}{{"none", core.ReclaimNone}, {"hazard", core.ReclaimHazard}, {"epoch", core.ReclaimEpoch}} {
		t.Run(rc.name, func(t *testing.T) {
			const watchdog = 8
			d := core.New(helpingConfig(watchdog, rc.p))
			announcer := d.Register() // tid 0
			helper := d.Register()    // tid 1

			// On an empty min-size deque every push attempt is an interior
			// push, so 16 forced L1 failures are exactly the announce streak.
			s := chaos.NewSchedule(1).
				Set(chaos.L1, chaos.Rule{FailN: 2 * watchdog}).
				Set(chaos.Claim, chaos.Rule{Park: 1})
			chaos.Arm(s)
			defer chaos.Disarm()

			pushErr := make(chan error, 1)
			go func() {
				pushErr <- d.PushLeft(announcer, 777)
			}()
			waitParked(t, s, 1)
			if got := s.Stats(chaos.Claim).Parks; got != 1 {
				t.Fatalf("Claim parks = %d, want 1 (the announcer's self-claim)", got)
			}

			// The announcer is suspended with its op announced. The helper
			// runs plain ops; the op must be helped to completion within one
			// poll interval of them.
			opsUsed := 0
			for i := 0; i < helpPollInterval && d.Metrics().HelpsGiven == 0; i++ {
				if err := d.PushRight(helper, uint32(1000+i)); err != nil {
					t.Fatalf("helper push %d: %v", i, err)
				}
				opsUsed++
			}
			if got := d.Metrics().HelpsGiven; got != 1 {
				t.Fatalf("announced op not helped within %d helper ops (HelpsGiven=%d)",
					helpPollInterval, got)
			}
			t.Logf("announced push completed after %d helper ops (bound %d)",
				opsUsed, helpPollInterval)

			// Release the announcer: it must observe Done and report success.
			s.Release()
			if err := <-pushErr; err != nil {
				t.Fatalf("announced PushLeft returned %v after release", err)
			}

			m := d.Metrics()
			if m.Announces != 1 || m.HelpsGiven != 1 || m.HelpsReceived != 1 {
				t.Fatalf("announce/help accounting = %d/%d/%d, want 1/1/1",
					m.Announces, m.HelpsGiven, m.HelpsReceived)
			}

			// Exactly-once: 777 comes out exactly once, alongside every
			// helper value exactly once.
			chaos.Disarm()
			seen := make(map[uint32]int)
			for {
				v, ok := d.PopLeft(helper)
				if !ok {
					break
				}
				seen[v]++
			}
			if seen[777] != 1 {
				t.Fatalf("announced value popped %d times, want exactly 1", seen[777])
			}
			if len(seen) != 1+opsUsed {
				t.Fatalf("drained %d distinct values, want %d", len(seen), 1+opsUsed)
			}
			for v, n := range seen {
				if n != 1 {
					t.Fatalf("value %d popped %d times", v, n)
				}
			}
		})
	}
}

// TestAnnouncedCancelExactlyOnce drives a PopLeftCtx whose context expires
// while the op sits announced (the announcer parked at its self-claim), for
// both resolutions of the race:
//
//   - cancel wins: nobody claimed the op, the withdrawal CAS succeeds, the
//     call returns ctx.Err(), and the value is still in the deque;
//   - completion wins: a helper claimed and executed the op before the
//     announcer could withdraw, so the call returns the value normally —
//     the cancellation arrived after the op's linearization point.
//
// In both branches the op takes effect at most once: the target value is
// popped exactly once across the call and the final drain.
func TestAnnouncedCancelExactlyOnce(t *testing.T) {
	for _, rc := range []struct {
		name string
		p    core.ReclaimPolicy
	}{{"hazard", core.ReclaimHazard}, {"epoch", core.ReclaimEpoch}} {
		t.Run(rc.name, func(t *testing.T) {
			const watchdog = 4

			// Branch 1: cancel wins. The Claim rule parks the announcer and
			// then forces its claim attempt to fail, so after release it
			// re-checks the (now expired) context and withdraws.
			t.Run("cancel-wins", func(t *testing.T) {
				d := core.New(helpingConfig(watchdog, rc.p))
				h := d.Register()
				if err := d.PushRight(h, 99); err != nil {
					t.Fatal(err)
				}
				s := chaos.NewSchedule(1).
					SetAll([]chaos.Point{chaos.L2, chaos.L4}, chaos.Rule{FailN: 2 * watchdog}).
					Set(chaos.Claim, chaos.Rule{Park: 1, FailN: 1})
				chaos.Arm(s)
				defer chaos.Disarm()

				ctx, cancel := context.WithCancel(context.Background())
				type popResult struct {
					v   uint32
					ok  bool
					err error
				}
				res := make(chan popResult, 1)
				go func() {
					v, ok, err := d.PopLeftCtx(ctx, h)
					res <- popResult{v, ok, err}
				}()
				waitParked(t, s, 1)
				cancel() // the context expires while the op is announced
				s.Release()

				r := <-res
				if r.ok || !errors.Is(r.err, context.Canceled) {
					t.Fatalf("cancelled announced pop = (%d, %v, %v), want Canceled", r.v, r.ok, r.err)
				}
				m := d.Metrics()
				if m.Announces != 1 || m.HelpsGiven != 0 || m.HelpsReceived != 0 {
					t.Fatalf("accounting = %d/%d/%d, want 1/0/0 (withdrawn unhelped)",
						m.Announces, m.HelpsGiven, m.HelpsReceived)
				}
				// The withdrawal proved the op never happened: 99 is intact.
				chaos.Disarm()
				h2 := d.Register()
				if v, ok := d.PopLeft(h2); !ok || v != 99 {
					t.Fatalf("after cancel, deque holds (%d, %v), want (99, true)", v, ok)
				}
				if _, ok := d.PopLeft(h2); ok {
					t.Fatal("extra value after cancelled pop")
				}
			})

			// Branch 2: completion wins. The announcer parks at its claim
			// with no forced failure; a helper completes the pop while the
			// context is already expired; the released announcer consumes the
			// result and returns it.
			t.Run("completion-wins", func(t *testing.T) {
				d := core.New(helpingConfig(watchdog, rc.p))
				announcer := d.Register()
				helper := d.Register()
				if err := d.PushRight(helper, 99); err != nil {
					t.Fatal(err)
				}
				s := chaos.NewSchedule(1).
					SetAll([]chaos.Point{chaos.L2, chaos.L4}, chaos.Rule{FailN: 2 * watchdog}).
					Set(chaos.Claim, chaos.Rule{Park: 1})
				chaos.Arm(s)
				defer chaos.Disarm()

				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				type popResult struct {
					v   uint32
					ok  bool
					err error
				}
				res := make(chan popResult, 1)
				go func() {
					v, ok, err := d.PopLeftCtx(ctx, announcer)
					res <- popResult{v, ok, err}
				}()
				waitParked(t, s, 1)
				cancel() // expired while announced — but a helper is coming

				// Helper pushes never hit the pop-side failure budgets; its
				// poll claims the announced pop. Leftover L2/L4 budget can
				// burn one claim (hand-back), so allow a few poll intervals.
				pushed := 0
				for i := 0; i < 4*helpPollInterval && d.Metrics().HelpsGiven == 0; i++ {
					if err := d.PushRight(helper, uint32(1000+i)); err != nil {
						t.Fatalf("helper push %d: %v", i, err)
					}
					pushed++
				}
				if d.Metrics().HelpsGiven != 1 {
					t.Fatalf("announced pop not helped within %d helper ops", pushed)
				}
				s.Release()

				r := <-res
				if r.err != nil || !r.ok || r.v != 99 {
					t.Fatalf("helped pop = (%d, %v, %v), want (99, true, nil): completion "+
						"preceded the withdrawal attempt", r.v, r.ok, r.err)
				}
				// Exactly-once: 99 is gone; helper values drain once each.
				chaos.Disarm()
				seen := make(map[uint32]int)
				for {
					v, ok := d.PopLeft(helper)
					if !ok {
						break
					}
					seen[v]++
				}
				if seen[99] != 0 {
					t.Fatalf("value 99 popped again after the helped pop")
				}
				if len(seen) != pushed {
					t.Fatalf("drained %d distinct values, want %d", len(seen), pushed)
				}
				for v, n := range seen {
					if n != 1 {
						t.Fatalf("value %d popped %d times", v, n)
					}
				}
			})
		})
	}
}
