//go:build chaos

package chaostest

import (
	"strconv"
	"sync"
	"testing"

	dq "repro"
	"repro/internal/chaos"
)

// depqReclaims are the reclamation policies the DEPQ chaos suites sweep:
// the band stamps and reservation/undo protocol must stay balanced no
// matter how nodes are recycled underneath them.
var depqReclaims = []struct {
	name string
	pol  dq.Reclamation
}{
	{"hazard", dq.ReclaimHazard},
	{"epoch", dq.ReclaimEpoch},
}

// TestDEPQConservationChaos runs a concurrent priority workload through
// the DEPQ under a fail-everywhere schedule and checks conservation:
// every job whose Push reported success pops exactly once — from either
// end — nothing is invented, nothing is lost. Forced ErrFull failures
// exercise the UndoPush path; chaotic pop interleavings exercise
// ReservePopMin/Max claim-then-undo against concurrent stamp motion.
func TestDEPQConservationChaos(t *testing.T) {
	for _, rc := range depqReclaims {
		t.Run(rc.name, func(t *testing.T) {
			for _, seed := range seeds(t) {
				t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
					const (
						bands = 6
						bound = 2
					)
					q := dq.NewDEPQ[uint64](
						dq.WithBands(bands),
						dq.WithBandBound(bound),
						dq.WithDEPQPool(dq.WithShardOptions(
							dq.WithNodeSize(4), dq.WithMaxThreads(16),
							dq.WithReclamation(rc.pol),
						)),
					)
					s := failEverywhere(seed)
					chaos.Arm(s)
					defer chaos.Disarm()

					const workers = 4
					iters := 600
					if testing.Short() {
						iters = 150
					}
					pushedOK := make([][]uint64, workers)
					popped := make([][]uint64, workers)
					var wg sync.WaitGroup
					for w := 0; w < workers; w++ {
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							h := q.Register()
							defer h.Flush()
							seq := uint64(0)
							for i := 0; i < iters; i++ {
								switch i % 4 {
								case 0, 1:
									seq++
									v := uint64(w+1)<<32 | seq
									prio := int(seq+uint64(w)) % bands
									if h.Push(v, prio) == nil {
										pushedOK[w] = append(pushedOK[w], v)
									}
								case 2:
									if v, _, ok := h.PopMin(); ok {
										popped[w] = append(popped[w], v)
									}
								case 3:
									if v, _, ok := h.PopMax(); ok {
										popped[w] = append(popped[w], v)
									}
								}
							}
						}(w)
					}
					wg.Wait()
					chaos.Disarm()

					want := make(map[uint64]bool)
					for _, vs := range pushedOK {
						for _, v := range vs {
							if want[v] {
								t.Fatalf("value %#x pushed-ok twice", v)
							}
							want[v] = true
						}
					}
					recover := func(v uint64) {
						if !want[v] {
							t.Fatalf("value %#x popped but never successfully pushed", v)
						}
						delete(want, v)
					}
					for _, vs := range popped {
						for _, v := range vs {
							recover(v)
						}
					}
					h := q.Register()
					for {
						v, _, ok := h.PopMin()
						if !ok {
							break
						}
						recover(v)
					}
					if len(want) != 0 {
						t.Fatalf("%d successfully pushed jobs lost (e.g. %#x)", len(want), firstKey(want))
					}
					if got := q.LenExact(); got != 0 {
						t.Fatalf("DEPQ reports %d resident after full drain", got)
					}
				})
			}
		})
	}
}

// TestDEPQInversionBoundChaos drives a mixed submit/serve workload
// through a bounded DEPQ under chaos schedules and gates the observed
// priority inversion against the configured bound: the reservation
// windows must hold even when forced failures undo pushes mid-stamp and
// retry pops across bands.
func TestDEPQInversionBoundChaos(t *testing.T) {
	if !dq.MetricsEnabled {
		t.Skip("inversion recording compiled out (obsoff)")
	}
	for _, rc := range depqReclaims {
		t.Run(rc.name, func(t *testing.T) {
			for _, seed := range seeds(t) {
				t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
					const (
						bands = 8
						bound = 2
					)
					q := dq.NewDEPQ[uint64](
						dq.WithBands(bands),
						dq.WithBandBound(bound),
						dq.WithDEPQPool(dq.WithShardOptions(
							dq.WithNodeSize(4), dq.WithMaxThreads(16),
							dq.WithReclamation(rc.pol),
						)),
					)
					s := failEverywhere(seed)
					chaos.Arm(s)
					defer chaos.Disarm()

					const workers = 4
					iters := 800
					if testing.Short() {
						iters = 200
					}
					var wg sync.WaitGroup
					for w := 0; w < workers; w++ {
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							h := q.Register()
							defer h.Flush()
							v := uint64(w+1) << 32
							for i := 0; i < iters; i++ {
								v++
								// Ignore ErrFull (forced alloc failures): the band
								// stamp is undone and the bound unaffected.
								_ = h.Push(v, i%bands)
								if i%2 == 1 {
									if i%8 == 7 {
										h.PopMax()
									} else {
										h.PopMin()
									}
								}
							}
						}(w)
					}
					wg.Wait()
					// Drain the backlog so late pops (emptiest bands) count too.
					h := q.Register()
					for {
						if _, _, ok := h.PopMin(); !ok {
							break
						}
					}
					chaos.Disarm()

					m := q.DepqMetrics()
					if m.Pops() == 0 {
						t.Fatal("no pops recorded an inversion estimate")
					}
					if m.InvMax > bound {
						t.Fatalf("observed priority inversion %d exceeds configured bound %d (mean %.2f over %d pops)",
							m.InvMax, bound, m.MeanInv(), m.Pops())
					}
				})
			}
		})
	}
}
