//go:build chaos

package chaostest

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
)

// TestObstructionFreedomPerTransition checks the progress property the paper
// actually claims — obstruction freedom — one transition at a time. For each
// transition point L1–L7 it parks three goroutines mid-transition at exactly
// that point (after the oracle, before the transition's first CAS: the
// canonical "thread stalled holding no lock" schedule), then requires a
// fourth, isolated handle to complete full operations at both ends within a
// small bounded attempt budget. If any transition's retry logic secretly
// depended on the stalled threads finishing — i.e. if the structure were
// blocking — the isolated Try* calls would burn their budget and return
// ErrContended.
func TestObstructionFreedomPerTransition(t *testing.T) {
	for _, p := range chaos.TransitionPoints() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			const blockers = 3
			d := core.New(core.Config{NodeSize: core.MinNodeSize, MaxThreads: blockers + 2})
			iso := d.Register()

			s := chaos.NewSchedule(1).Set(p, chaos.Rule{Park: blockers})
			chaos.Arm(s)
			defer chaos.Disarm()

			var stop atomic.Bool
			var wg sync.WaitGroup
			for b := 0; b < blockers; b++ {
				// Launch blockers one at a time, waiting for each to park
				// before starting the next: every blocker then runs alone
				// (earlier ones are frozen pre-CAS, having changed nothing),
				// so the state-machine walk below reaches every transition
				// deterministically rather than probabilistically.
				wg.Add(1)
				go func() {
					defer wg.Done()
					h := d.Register()
					for !stop.Load() {
						blockerRound(d, h)
					}
				}()
				deadline := time.Now().Add(10 * time.Second)
				for s.ParkedNow() != int64(b+1) {
					if time.Now().After(deadline) {
						t.Fatalf("blocker %d never parked at %v (parked=%d)", b, p, s.ParkedNow())
					}
					time.Sleep(100 * time.Microsecond)
				}
			}

			// All blockers are now stalled mid-transition at p. The isolated
			// handle must finish in bounded steps: generous but finite budget,
			// and any ErrContended is a progress failure.
			const attempts = 512
			try := func(name string, err error) {
				if err != nil {
					t.Fatalf("isolated %s with %d goroutines parked at %v: %v", name, blockers, p, err)
				}
			}
			// Enough pushes to cross node boundaries (ns=4), so the isolated
			// thread itself drives appends/seals/removes while the others are
			// parked, then full drain-back from both ends.
			for i := uint32(0); i < 6; i++ {
				try("TryPushLeft", d.TryPushLeft(iso, 100+i, attempts))
				try("TryPushRight", d.TryPushRight(iso, 200+i, attempts))
			}
			for i := uint32(5); ; i-- {
				v, ok, err := d.TryPopLeft(iso, attempts)
				try("TryPopLeft", err)
				if !ok {
					t.Fatalf("isolated TryPopLeft empty with values resident (parked at %v)", p)
				}
				if v != 100+i {
					t.Fatalf("isolated TryPopLeft = %d, want %d (parked at %v)", v, 100+i, p)
				}
				if i == 0 {
					break
				}
			}
			for i := uint32(5); ; i-- {
				v, ok, err := d.TryPopRight(iso, attempts)
				try("TryPopRight", err)
				if !ok {
					t.Fatalf("isolated TryPopRight empty with values resident (parked at %v)", p)
				}
				if v != 200+i {
					t.Fatalf("isolated TryPopRight = %d, want %d (parked at %v)", v, 200+i, p)
				}
				if i == 0 {
					break
				}
			}

			// The isolated handle visited p too; it must have run past the
			// exhausted park budget, not joined the parked set.
			if got := s.ParkedNow(); got != blockers {
				t.Fatalf("parked count = %d after isolated ops, want %d", got, blockers)
			}
			if got := s.Stats(p).Parks; got != blockers {
				t.Fatalf("park stat = %d, want %d", got, blockers)
			}

			stop.Store(true)
			chaos.Disarm() // releases the parked blockers
			wg.Wait()
			if err := d.CheckInvariant(); err != nil {
				t.Fatalf("invariant after release: %v", err)
			}
		})
	}
}

// blockerRound is one pass of the all-transitions state walk (the same
// geometry recipes as driveAllStates, minus the accounting): interior and
// boundary traffic on both sides plus the straddle and empty-check shapes,
// so a goroutine looping it visits every transition point. Errors are
// ignored — the round only exists to reach injection points.
func blockerRound(d *core.Deque, h *core.Handle) {
	pushL := func() { _ = d.PushLeft(h, 1) }
	pushR := func() { _ = d.PushRight(h, 1) }
	popL := func() { _, _ = d.PopLeft(h) }
	popR := func() { _, _ = d.PopRight(h) }
	// Drain toward empty first: rounds interrupted by parking leave
	// residual values, and the straddle/empty recipes below assume a
	// near-empty start.
	for i := 0; i < 32; i++ {
		popL()
	}
	for i := 0; i < 7; i++ {
		pushL()
	}
	for i := 0; i < 9; i++ {
		popL()
	}
	for i := 0; i < 7; i++ {
		pushR()
	}
	for i := 0; i < 9; i++ {
		popR()
	}
	pushL()
	pushL()
	popL()
	pushL()
	popL()
	popL()
	popL()
	pushR()
	pushR()
	popR()
	pushR()
	popR()
	popR()
	popR()
	pushL()
	pushL()
	popR()
	popL()
	popL()
	popL()
	pushR()
	pushR()
	popL()
	popR()
	popR()
	popR()
	pushL()
	popR()
	popL()
	pushR()
	popL()
	popR()
}
