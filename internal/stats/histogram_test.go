package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram misbehaves")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("quantile of empty != 0")
	}
	if h.String() != "empty histogram" {
		t.Fatalf("String() = %q", h.String())
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Record(100)
	if h.Count() != 1 || h.Min() != 100 || h.Max() != 100 {
		t.Fatalf("bad stats: %v", h)
	}
	if h.Mean() != 100 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	q := h.Quantile(0.5)
	if q < 96 || q > 100 {
		t.Fatalf("Quantile(0.5) = %d, want ~100 within bucket error", q)
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	// Values below subBuckets land in exact unit buckets.
	h := NewHistogram()
	for v := uint64(0); v < subBuckets; v++ {
		h.Record(v)
	}
	for q, want := range map[float64]uint64{0.0: 0, 0.5: subBuckets / 2} {
		if got := h.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %d, want %d", q, got, want)
		}
	}
}

func TestHistogramRelativeError(t *testing.T) {
	// Any recorded value's bucket representative must be within ~2x
	// subBucket resolution of the value.
	f := func(raw uint32) bool {
		v := uint64(raw)
		h := NewHistogram()
		h.Record(v)
		got := h.Quantile(0.5)
		if v < subBuckets {
			return got == v
		}
		rel := math.Abs(float64(got)-float64(v)) / float64(v)
		return got <= v && rel <= 1.0/float64(subBuckets)*2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantilesOrdered(t *testing.T) {
	h := NewHistogram()
	for i := uint64(1); i <= 100000; i += 7 {
		h.Record(i)
	}
	last := uint64(0)
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		v := h.Quantile(q)
		if v < last {
			t.Fatalf("quantiles not monotone: q=%v gives %d < %d", q, v, last)
		}
		last = v
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	for i := uint64(1); i <= 10000; i++ {
		h.Record(i)
	}
	p50 := float64(h.Quantile(0.5))
	if p50 < 4500 || p50 > 5500 {
		t.Fatalf("p50 = %v, want ~5000", p50)
	}
	p99 := float64(h.Quantile(0.99))
	if p99 < 9300 || p99 > 10000 {
		t.Fatalf("p99 = %v, want ~9900", p99)
	}
}

// TestHistogramQuantileVsExact pins the histogram's accuracy contract
// against ground truth: for several distributions, every reported
// quantile must sit within one bucket width (1/subBuckets relative, the
// geometry's guarantee) below the exact sorted-sample quantile. This is
// the bound the latency layer (internal/obs) inherits, so it is asserted
// here once, at the source of the bucket math.
func TestHistogramQuantileVsExact(t *testing.T) {
	distributions := map[string]func(i uint64) uint64{
		"uniform":   func(i uint64) uint64 { return i + 1 },
		"squared":   func(i uint64) uint64 { return (i + 1) * (i + 1) },
		"logspread": func(i uint64) uint64 { return 100 + (i%20)*(1<<(i%30)/1024+1) },
	}
	const n = 20000
	for name, gen := range distributions {
		h := NewHistogram()
		vals := make([]uint64, n)
		for i := uint64(0); i < n; i++ {
			vals[i] = gen(i)
			h.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			target := int(q * n)
			if target >= n {
				target = n - 1
			}
			exact := vals[target]
			got := h.Quantile(q)
			if got > exact {
				t.Errorf("%s: Quantile(%v) = %d above exact %d (representative must be a lower bound)",
					name, q, got, exact)
				continue
			}
			rel := float64(exact-got) / float64(exact)
			if rel > 1.0/subBuckets {
				t.Errorf("%s: Quantile(%v) = %d vs exact %d: relative error %.4f exceeds %.4f",
					name, q, got, exact, rel, 1.0/subBuckets)
			}
		}
	}
}

// TestHistogramMergePreservesQuantiles pins that splitting a stream
// across histograms and merging is indistinguishable from recording it
// all in one — merge adds bucket counts, so every quantile must be
// bit-identical, not merely close.
func TestHistogramMergePreservesQuantiles(t *testing.T) {
	const n, parts = 30000, 7
	whole := NewHistogram()
	shards := make([]*Histogram, parts)
	for i := range shards {
		shards[i] = NewHistogram()
	}
	for i := uint64(0); i < n; i++ {
		v := (i*2654435761 + 17) % 1000000
		whole.Record(v)
		shards[i%parts].Record(v)
	}
	merged := NewHistogram()
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("merged count %d != whole count %d", merged.Count(), whole.Count())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged extremes %d/%d != whole %d/%d",
			merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
		if m, w := merged.Quantile(q), whole.Quantile(q); m != w {
			t.Errorf("Quantile(%v): merged %d != whole %d", q, m, w)
		}
	}
}

func TestHistogramQuantileOutOfRangePanics(t *testing.T) {
	h := NewHistogram()
	h.Record(1)
	for _, q := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", q)
				}
			}()
			h.Quantile(q)
		}()
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := uint64(0); i < 1000; i++ {
		a.Record(10)
		b.Record(1000)
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 10 || a.Max() != 1000 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	mid := a.Mean()
	if mid < 500 || mid > 510 {
		t.Fatalf("merged mean = %v, want 505", mid)
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(5)
	a.Merge(b) // merging empty must not clobber min
	if a.Min() != 5 {
		t.Fatalf("Min = %d after merging empty", a.Min())
	}
}

func TestHistogramHugeValues(t *testing.T) {
	h := NewHistogram()
	h.Record(math.MaxUint64)
	h.Record(1 << 60)
	if h.Count() != 2 {
		t.Fatal("lost observations")
	}
	if h.Quantile(1) == 0 {
		t.Fatal("huge values vanished")
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	last := -1
	for _, v := range []uint64{0, 1, 2, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1 << 40, 1 << 62} {
		i := bucketIndex(v)
		if i < last {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		if low := bucketLow(i); low > v {
			t.Fatalf("bucketLow(%d) = %d exceeds value %d", i, low, v)
		}
		last = i
	}
}

func TestAsciiRendering(t *testing.T) {
	h := NewHistogram()
	for i := uint64(100); i < 10000; i += 3 {
		h.Record(i)
	}
	out := h.Ascii(40)
	if !strings.Contains(out, "#") {
		t.Fatalf("no bars rendered:\n%s", out)
	}
	if NewHistogram().Ascii(40) != "empty histogram" {
		t.Fatal("empty rendering wrong")
	}
}

func TestStringFormat(t *testing.T) {
	h := NewHistogram()
	for i := uint64(1); i <= 100; i++ {
		h.Record(i * 10)
	}
	s := h.String()
	for _, frag := range []string{"n=100", "p50=", "p99=", "max="} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i) & 0xFFFFF)
	}
}
