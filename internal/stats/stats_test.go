package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Min != 42 || s.Max != 42 || s.Median != 42 {
		t.Fatalf("bad summary: %+v", s)
	}
	if s.Stddev != 0 {
		t.Fatalf("Stddev of single sample = %v, want 0", s.Stddev)
	}
	if s.CI95() != 0 {
		t.Fatalf("CI95 of single sample = %v, want 0", s.CI95())
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	// 2, 4, 4, 4, 5, 5, 7, 9: mean 5, population sd 2, sample sd ~2.138
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if s.Mean != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean)
	}
	if !approx(s.Stddev, 2.13809, 1e-4) {
		t.Fatalf("Stddev = %v, want ~2.138", s.Stddev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min, s.Max)
	}
	if !approx(s.Median, 4.5, 1e-12) {
		t.Fatalf("Median = %v, want 4.5", s.Median)
	}
}

func TestMedianOdd(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Fatalf("Median = %v, want 5", s.Median)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty sample")
		}
	}()
	Summarize(nil)
}

func TestSpeedup(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Fatal("Speedup(10,2) != 5")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero baseline")
		}
	}()
	Speedup(1, 0)
}

func TestRelStddevZeroMean(t *testing.T) {
	s := Summarize([]float64{0, 0, 0})
	if s.RelStddev() != 0 {
		t.Fatalf("RelStddev = %v, want 0", s.RelStddev())
	}
}

func TestHumanRate(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{5, "5 ops/s"},
		{1500, "1.5k ops/s"},
		{2.5e6, "2.5M ops/s"},
		{3e9, "3G ops/s"},
	}
	for _, c := range cases {
		if got := HumanRate(c.in); got != c.want {
			t.Errorf("HumanRate(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStringIncludesN(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if !strings.Contains(s.String(), "n=3") {
		t.Fatalf("String() = %q, want n=3 marker", s.String())
	}
}

func TestSummaryProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw)+1)
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		xs = append(xs, 1) // never empty
		s := Summarize(xs)
		if s.Min > s.Mean+1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		if s.Median < s.Min-1e-9 || s.Median > s.Max+1e-9 {
			return false
		}
		return s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
