package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a log-bucketed latency histogram in the HdrHistogram style:
// geometric buckets spanning 1ns to ~17.6s with bounded relative error.
// It supports single-writer recording (each benchmark worker owns one) and
// merging for aggregation. The paper's latency discussion — OFDeque keeps
// latency low, TSDeque trades latency for throughput — is quantified with
// these.
type Histogram struct {
	counts [nBuckets]uint64
	total  uint64
	sum    float64
	min    uint64
	max    uint64
}

// Bucket geometry: 64 major (power-of-two) buckets × subBuckets minor
// buckets each gives ~1.6% relative error.
const (
	subBucketBits = 5
	subBuckets    = 1 << subBucketBits
	nBuckets      = 64 * subBuckets
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxUint64}
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	// Position of the highest set bit.
	lz := 63 - bits64LeadingZeros(v)
	shift := lz - subBucketBits
	idx := (shift+1)*subBuckets + int(v>>uint(shift)) - subBuckets
	if idx >= nBuckets {
		return nBuckets - 1
	}
	return idx
}

// bucketLow returns the smallest value mapping to bucket i (its reported
// representative).
func bucketLow(i int) uint64 {
	if i < subBuckets {
		return uint64(i)
	}
	shift := i/subBuckets - 1
	sub := i % subBuckets
	return (uint64(subBuckets) + uint64(sub)) << uint(shift)
}

func bits64LeadingZeros(v uint64) int {
	n := 0
	for mask := uint64(1) << 63; mask != 0 && v&mask == 0; mask >>= 1 {
		n++
	}
	return n
}

// Record adds one observation (e.g. nanoseconds).
func (h *Histogram) Record(v uint64) {
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.total > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() uint64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns an approximation of the q-quantile (0 <= q <= 1), with
// the bucket's lower bound as the representative. Empty histograms return
// 0. Out-of-range q panics: that is always a harness bug.
func (h *Histogram) Quantile(q float64) uint64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile(%v) out of [0,1]", q))
	}
	if h.total == 0 {
		return 0
	}
	target := uint64(q * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > target {
			return bucketLow(i)
		}
	}
	return bucketLow(nBuckets - 1)
}

// String formats the standard percentile line used in EXPERIMENTS.md.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "empty histogram"
	}
	return fmt.Sprintf("n=%d mean=%.0fns p50=%d p90=%d p99=%d p99.9=%d max=%d",
		h.total, h.Mean(), h.Quantile(0.50), h.Quantile(0.90),
		h.Quantile(0.99), h.Quantile(0.999), h.Max())
}

// Ascii renders a crude log-scale bar chart of the distribution between the
// p1 and p99.9 buckets, for terminal inspection.
func (h *Histogram) Ascii(width int) string {
	if h.total == 0 {
		return "empty histogram"
	}
	lo, hi := bucketIndex(h.Quantile(0.01)), bucketIndex(h.Quantile(0.999))
	// Coarsen into at most 20 rows.
	rows := 20
	if hi-lo+1 < rows {
		rows = hi - lo + 1
	}
	if rows <= 0 {
		rows = 1
	}
	per := (hi - lo + 1 + rows - 1) / rows
	var b strings.Builder
	maxCount := uint64(0)
	agg := make([]uint64, rows)
	for i := lo; i <= hi; i++ {
		agg[(i-lo)/per] += h.counts[i]
	}
	for _, c := range agg {
		if c > maxCount {
			maxCount = c
		}
	}
	for r := 0; r < rows; r++ {
		low := bucketLow(lo + r*per)
		bar := 0
		if maxCount > 0 {
			bar = int(uint64(width) * agg[r] / maxCount)
		}
		fmt.Fprintf(&b, "%12dns %s\n", low, strings.Repeat("#", bar))
	}
	return b.String()
}
