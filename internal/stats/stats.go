// Package stats provides the summary statistics the benchmark harness uses
// to aggregate trials: the paper runs each configuration five times and
// reports the average; we additionally report spread so EXPERIMENTS.md can
// record measurement noise.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It panics on an empty sample, since a
// benchmark trial set of size zero always indicates a harness bug.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// CI95 returns the half-width of an approximate 95% confidence interval for
// the mean, using the normal critical value (1.96); with the five trials the
// harness runs, this is a rough but useful error bar.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Stddev / math.Sqrt(float64(s.N))
}

// RelStddev returns the coefficient of variation (stddev/mean), or 0 when the
// mean is 0.
func (s Summary) RelStddev() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Stddev / s.Mean
}

// String formats the summary as "mean ± ci95 (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.CI95(), s.N)
}

// Speedup returns a/b, the conventional "times faster" ratio. It panics if
// b is zero.
func Speedup(a, b float64) float64 {
	if b == 0 {
		panic("stats: Speedup with zero baseline")
	}
	return a / b
}

// HumanRate formats an operations-per-second rate with an SI suffix, e.g.
// "12.3M ops/s".
func HumanRate(opsPerSec float64) string {
	switch {
	case opsPerSec >= 1e9:
		return fmt.Sprintf("%.3gG ops/s", opsPerSec/1e9)
	case opsPerSec >= 1e6:
		return fmt.Sprintf("%.3gM ops/s", opsPerSec/1e6)
	case opsPerSec >= 1e3:
		return fmt.Sprintf("%.3gk ops/s", opsPerSec/1e3)
	default:
		return fmt.Sprintf("%.3g ops/s", opsPerSec)
	}
}
