// Package hostmeta collects the host facts every BENCH_*.json must carry
// so numbers can be compared across machines: CPU topology as the Go
// runtime sees it and the toolchain that produced the binary.
package hostmeta

import "runtime"

// Host identifies the benchmark host and toolchain. Embed it in every
// benchmark report.
type Host struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`

	// Caveat flags measurement conditions a reader must know before
	// comparing numbers across hosts (currently: single-core hosts, where
	// concurrent benchmarks measure scheduling overhead, not parallel
	// speedup). Empty when nothing applies.
	Caveat string `json:"caveat,omitempty"`
}

// Collect snapshots the current host.
func Collect() Host {
	h := Host{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	if h.NumCPU == 1 || h.GOMAXPROCS == 1 {
		h.Caveat = "single-core host: concurrent results measure overhead, not parallel speedup"
	}
	return h
}
