// Package hostmeta collects the host facts every BENCH_*.json must carry
// so numbers can be compared across machines: CPU topology as the Go
// runtime sees it and the toolchain that produced the binary.
package hostmeta

import "runtime"

// Host identifies the benchmark host and toolchain. Embed it in every
// benchmark report.
type Host struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// Collect snapshots the current host.
func Collect() Host {
	return Host{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
}
