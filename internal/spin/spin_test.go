package spin

import (
	"sync"
	"testing"
)

func TestTATASBasic(t *testing.T) {
	var l TATAS
	if l.Locked() {
		t.Fatal("zero value reports locked")
	}
	l.Lock()
	if !l.Locked() {
		t.Fatal("Lock did not set state")
	}
	l.Unlock()
	if l.Locked() {
		t.Fatal("Unlock did not clear state")
	}
}

func TestTATASTryLock(t *testing.T) {
	var l TATAS
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

func TestTATASUnlockUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unlocked lock did not panic")
		}
	}()
	var l TATAS
	l.Unlock()
}

func TestBackoffLockUnlockUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unlocked lock did not panic")
		}
	}()
	var l BackoffLock
	l.Unlock()
}

// counterTest verifies mutual exclusion by incrementing a plain int under the
// lock from many goroutines; -race plus a final count check catches misses.
func counterTest(t *testing.T, lock sync.Locker) {
	t.Helper()
	const goroutines = 8
	const perG = 20000
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lock.Lock()
				counter++
				lock.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*perG {
		t.Fatalf("counter = %d, want %d", counter, goroutines*perG)
	}
}

func TestTATASMutualExclusion(t *testing.T)       { counterTest(t, new(TATAS)) }
func TestBackoffLockMutualExclusion(t *testing.T) { counterTest(t, new(BackoffLock)) }

func TestBackoffLockTryLock(t *testing.T) {
	var l BackoffLock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
}

func TestLocksAreSyncLockers(t *testing.T) {
	// Compile-time-ish check that both locks satisfy sync.Locker.
	var _ sync.Locker = (*TATAS)(nil)
	var _ sync.Locker = (*BackoffLock)(nil)
}

func BenchmarkTATASUncontended(b *testing.B) {
	var l TATAS
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

func BenchmarkTATASContended(b *testing.B) {
	var l TATAS
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Lock()
			l.Unlock()
		}
	})
}

func BenchmarkBackoffLockContended(b *testing.B) {
	var l BackoffLock
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Lock()
			l.Unlock()
		}
	})
}
