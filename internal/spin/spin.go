// Package spin provides the spin locks used by the lock-based baselines in
// the paper's evaluation: a plain test-and-test_and_set (TATAS) lock for
// SGLDeque and an exponential-backoff variant for the flat-combining deque.
package spin

import (
	"runtime"
	"sync/atomic"

	"repro/internal/backoff"
)

// TATAS is a test-and-test_and_set spin lock. Readers spin on a plain load
// until the lock looks free, then attempt the atomic swap; this keeps the
// cache line in shared state while waiting, which is the property the paper's
// "single global test-and-test_and_set lock" baseline relies on.
//
// The zero value is an unlocked lock.
type TATAS struct {
	state atomic.Uint32
}

// Lock acquires the lock, spinning until it is available.
func (l *TATAS) Lock() {
	for {
		if l.state.Load() == 0 && l.state.Swap(1) == 0 {
			return
		}
		spinWait()
	}
}

// TryLock attempts to acquire the lock without spinning. It reports whether
// the lock was acquired.
func (l *TATAS) TryLock() bool {
	return l.state.Load() == 0 && l.state.Swap(1) == 0
}

// Unlock releases the lock. Calling Unlock on an unlocked TATAS panics, as
// that always indicates a caller bug.
func (l *TATAS) Unlock() {
	if l.state.Swap(0) != 1 {
		panic("spin: Unlock of unlocked TATAS")
	}
}

// Locked reports whether the lock is currently held (by anyone). It is a
// racy snapshot, useful only for tests and stats.
func (l *TATAS) Locked() bool { return l.state.Load() != 0 }

// BackoffLock is a TATAS lock whose waiters back off exponentially between
// attempts, as in the flat-combining paper's "exponential backoff lock".
// Unlike TATAS, BackoffLock keeps per-acquisition backoff state on the
// caller's stack, so the zero value is ready to use and the lock itself stays
// a single word.
type BackoffLock struct {
	state atomic.Uint32
	seed  atomic.Uint64 // per-acquire backoff seed stream
}

// Lock acquires the lock, backing off exponentially between attempts.
func (l *BackoffLock) Lock() {
	if l.state.Load() == 0 && l.state.Swap(1) == 0 {
		return // fast path: uncontended
	}
	var bo backoff.Backoff
	bo.Init(backoff.DefaultMinSpins, backoff.DefaultMaxSpins, l.seed.Add(0x9e3779b97f4a7c15))
	for {
		if l.state.Load() == 0 && l.state.Swap(1) == 0 {
			return
		}
		bo.Spin()
	}
}

// TryLock attempts to acquire the lock without waiting. It reports whether
// the lock was acquired.
func (l *BackoffLock) TryLock() bool {
	return l.state.Load() == 0 && l.state.Swap(1) == 0
}

// Unlock releases the lock. Calling Unlock on an unlocked BackoffLock panics.
func (l *BackoffLock) Unlock() {
	if l.state.Swap(0) != 1 {
		panic("spin: Unlock of unlocked BackoffLock")
	}
}

// Locked reports whether the lock is currently held. Racy; tests only.
func (l *BackoffLock) Locked() bool { return l.state.Load() != 0 }

// spinWait is one polite busy-wait iteration for TATAS waiters.
func spinWait() {
	// A handful of empty iterations then a scheduler yield: under Go, a
	// preempted lock holder can only run again if waiters yield the P.
	for i := 0; i < 32; i++ {
		_ = i
	}
	runtime.Gosched()
}
