package lincheck

import (
	"sync"
	"testing"

	"repro/internal/seqdeque"
)

// seq builds a strictly sequential history from (kind, arg/ret, ok) triples.
func seq(ops ...Op) History {
	ts := int64(0)
	h := make(History, len(ops))
	for i, o := range ops {
		ts++
		o.Call = ts
		ts++
		o.Return = ts
		h[i] = o
	}
	return h
}

func TestEmptyHistory(t *testing.T) {
	if !Check(nil) {
		t.Fatal("empty history rejected")
	}
}

func TestSequentialValid(t *testing.T) {
	h := seq(
		Op{Kind: PushLeft, Arg: 1},
		Op{Kind: PushRight, Arg: 2},
		Op{Kind: PopLeft, Ret: 1, RetOK: true},
		Op{Kind: PopLeft, Ret: 2, RetOK: true},
		Op{Kind: PopLeft, RetOK: false},
	)
	if !Check(h) {
		t.Fatal("valid sequential history rejected")
	}
}

func TestSequentialWrongValue(t *testing.T) {
	h := seq(
		Op{Kind: PushLeft, Arg: 1},
		Op{Kind: PushLeft, Arg: 2},
		Op{Kind: PopLeft, Ret: 1, RetOK: true}, // should be 2
	)
	if Check(h) {
		t.Fatal("wrong LIFO order accepted")
	}
}

func TestSequentialBogusEmpty(t *testing.T) {
	h := seq(
		Op{Kind: PushLeft, Arg: 1},
		Op{Kind: PopRight, RetOK: false}, // deque is nonempty
	)
	if Check(h) {
		t.Fatal("bogus EMPTY accepted")
	}
}

func TestSequentialPopNeverPushed(t *testing.T) {
	h := seq(
		Op{Kind: PushLeft, Arg: 1},
		Op{Kind: PopLeft, Ret: 99, RetOK: true},
	)
	if Check(h) {
		t.Fatal("pop of never-pushed value accepted")
	}
}

func TestConcurrentReorderAllowed(t *testing.T) {
	// Two overlapping pushes; a later pop can see either order.
	h := History{
		{Kind: PushLeft, Arg: 1, Call: 1, Return: 4},
		{Kind: PushLeft, Arg: 2, Call: 2, Return: 3},
		{Kind: PopLeft, Ret: 1, RetOK: true, Call: 5, Return: 6}, // 1 pushed last
		{Kind: PopLeft, Ret: 2, RetOK: true, Call: 7, Return: 8},
	}
	if !Check(h) {
		t.Fatal("legal overlap-order rejected")
	}
	// And the other resolution too.
	h[2].Ret, h[3].Ret = 2, 1
	if !Check(h) {
		t.Fatal("other legal overlap-order rejected")
	}
}

func TestConcurrentEmptyDuringOverlap(t *testing.T) {
	// A pop overlapping a push may return EMPTY (linearized before the
	// push) — but only while it overlaps.
	h := History{
		{Kind: PushLeft, Arg: 1, Call: 1, Return: 4},
		{Kind: PopLeft, RetOK: false, Call: 2, Return: 3},
	}
	if !Check(h) {
		t.Fatal("EMPTY during overlapping push rejected")
	}
	// Strictly after the push, EMPTY is wrong.
	h[1].Call, h[1].Return = 5, 6
	if Check(h) {
		t.Fatal("EMPTY after completed push accepted")
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// push(1) completes before push(2) starts; pops disagree.
	h := History{
		{Kind: PushRight, Arg: 1, Call: 1, Return: 2},
		{Kind: PushRight, Arg: 2, Call: 3, Return: 4},
		{Kind: PopLeft, Ret: 2, RetOK: true, Call: 5, Return: 6},
		{Kind: PopLeft, Ret: 1, RetOK: true, Call: 7, Return: 8},
	}
	if Check(h) {
		t.Fatal("history violating real-time order accepted")
	}
}

func TestDoublePopRejected(t *testing.T) {
	h := seq(
		Op{Kind: PushLeft, Arg: 7},
		Op{Kind: PopLeft, Ret: 7, RetOK: true},
		Op{Kind: PopRight, Ret: 7, RetOK: true},
	)
	if Check(h) {
		t.Fatal("double pop accepted")
	}
}

func TestRecorderProducesCheckableHistories(t *testing.T) {
	// Run a real (locked, hence trivially linearizable) deque under the
	// recorder and check the history.
	var mu sync.Mutex
	d := seqdeque.New[uint32](8)
	rec := NewRecorder()
	var wg sync.WaitGroup
	logs := make([]*WorkerLog, 4)
	for w := 0; w < 4; w++ {
		logs[w] = rec.Worker()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := logs[w]
			for i := 0; i < 8; i++ {
				v := uint32(w*100 + i)
				if i%2 == 0 {
					l.Push(PushLeft, v, func() {
						mu.Lock()
						d.PushLeft(v)
						mu.Unlock()
					})
				} else {
					l.Pop(PopRight, func() (uint32, bool) {
						mu.Lock()
						defer mu.Unlock()
						return d.PopRight()
					})
				}
			}
		}(w)
	}
	wg.Wait()
	h := Merge(logs...)
	if len(h) != 32 {
		t.Fatalf("history has %d ops, want 32", len(h))
	}
	if !Check(h) {
		t.Fatal("history of a locked deque not linearizable — checker bug")
	}
}

func TestBrokenDequeCaught(t *testing.T) {
	// A "deque" whose PopLeft returns the RIGHTMOST element must produce
	// non-linearizable histories under mixed use... sequentially it is
	// simply wrong, which the checker must flag.
	d := seqdeque.New[uint32](8)
	rec := NewRecorder()
	l := rec.Worker()
	l.Push(PushLeft, 1, func() { d.PushLeft(1) })
	l.Push(PushLeft, 2, func() { d.PushLeft(2) })
	l.Pop(PopLeft, func() (uint32, bool) { return d.PopRight() }) // broken: pops 1
	h := Merge(l)
	if Check(h) {
		t.Fatal("broken pop direction accepted")
	}
}

func TestOversizeHistoryPanics(t *testing.T) {
	h := make(History, MaxOps+1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on oversize history")
		}
	}()
	Check(h)
}

func TestOpString(t *testing.T) {
	o := Op{Kind: PushLeft, Arg: 5, Call: 1, Return: 2}
	if o.String() == "" {
		t.Fatal("empty String()")
	}
	o = Op{Kind: PopRight, RetOK: false, Call: 3, Return: 4}
	if o.String() == "" {
		t.Fatal("empty String()")
	}
}

func BenchmarkCheck24Ops(b *testing.B) {
	// A realistic small concurrent history.
	var h History
	ts := int64(0)
	for i := 0; i < 12; i++ {
		h = append(h, Op{Kind: PushLeft, Arg: uint32(i), Call: ts, Return: ts + 3})
		ts += 2
	}
	for i := 0; i < 12; i++ {
		h = append(h, Op{Kind: PopRight, Ret: uint32(i), RetOK: true, Call: ts, Return: ts + 3})
		ts += 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Check(h) {
			b.Fatal("valid history rejected")
		}
	}
}
