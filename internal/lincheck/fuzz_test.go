package lincheck

import (
	"testing"

	"repro/internal/seqdeque"
)

// FuzzCheckerAcceptsSequentialHistories generates a genuinely sequential
// history by replaying fuzz-chosen ops on the model and recording truthful
// outcomes; the checker must accept every such history. It also corrupts
// one successful pop's return value to a never-pushed sentinel and asserts
// rejection — both directions of the checker's judgement get fuzzed.
func FuzzCheckerAcceptsSequentialHistories(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 2, 3})
	f.Add([]byte{0, 0, 0, 3, 3, 3, 3})
	f.Add([]byte{2, 3, 0, 2, 1, 3})

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 24 {
			ops = ops[:24] // keep checking cheap
		}
		model := seqdeque.New[uint32](8)
		var h History
		ts := int64(0)
		next := uint32(0)
		firstPopIdx := -1
		for _, op := range ops {
			ts++
			o := Op{Call: ts}
			switch op % 4 {
			case 0:
				o.Kind, o.Arg = PushLeft, next
				model.PushLeft(next)
				next++
			case 1:
				o.Kind, o.Arg = PushRight, next
				model.PushRight(next)
				next++
			case 2:
				o.Kind = PopLeft
				o.Ret, o.RetOK = model.PopLeft()
			case 3:
				o.Kind = PopRight
				o.Ret, o.RetOK = model.PopRight()
			}
			ts++
			o.Return = ts
			if firstPopIdx < 0 && (o.Kind == PopLeft || o.Kind == PopRight) && o.RetOK {
				firstPopIdx = len(h)
			}
			h = append(h, o)
		}
		if !Check(h) {
			t.Fatalf("sequential history rejected: %v", h)
		}
		if firstPopIdx >= 0 {
			bad := append(History(nil), h...)
			bad[firstPopIdx].Ret = 0xDEAD0000 // never pushed
			if Check(bad) {
				t.Fatalf("history with invented pop value accepted: %v", bad)
			}
		}
	})
}
