// Package lincheck is an offline linearizability checker for deque
// histories, in the style of Wing & Gong's algorithm with Lowe's
// memoization: a depth-first search over linearization orders, pruning by
// (linearized-set, abstract-state) pairs already proven dead.
//
// The paper's correctness argument (Section III-A) identifies linearization
// points inside the implementation; this checker approaches from the
// outside: it records concurrent histories of the real structure and
// verifies that SOME assignment of linearization points — each between its
// operation's call and return — replays correctly against the sequential
// deque semantics of Section III-A1. Every concurrent structure in this
// repository is run through it in its tests.
//
// Checking is exponential in the worst case; histories are capped at 64
// operations, and the stress tests run many small randomized histories
// instead of one big one, which is the standard practice.
package lincheck

import (
	"fmt"
	"sync/atomic"

	"repro/internal/seqdeque"
)

// OpKind enumerates deque operations.
type OpKind uint8

// Operation kinds.
const (
	PushLeft OpKind = iota
	PushRight
	PopLeft
	PopRight
)

func (k OpKind) String() string {
	switch k {
	case PushLeft:
		return "push_left"
	case PushRight:
		return "push_right"
	case PopLeft:
		return "pop_left"
	case PopRight:
		return "pop_right"
	}
	return "?"
}

// Op is one completed operation in a history. Call and Return are logical
// timestamps drawn from one atomic counter, so all are distinct and
// real-time precedence is exactly Return(a) < Call(b).
type Op struct {
	Kind   OpKind
	Arg    uint32 // pushes: value pushed
	Ret    uint32 // pops: value returned (when RetOK)
	RetOK  bool   // pops: false means the operation reported EMPTY
	Call   int64
	Return int64
}

func (o Op) String() string {
	switch o.Kind {
	case PushLeft, PushRight:
		return fmt.Sprintf("%s(%d)@[%d,%d]", o.Kind, o.Arg, o.Call, o.Return)
	default:
		if o.RetOK {
			return fmt.Sprintf("%s()=%d@[%d,%d]", o.Kind, o.Ret, o.Call, o.Return)
		}
		return fmt.Sprintf("%s()=EMPTY@[%d,%d]", o.Kind, o.Call, o.Return)
	}
}

// History is a set of completed operations.
type History []Op

// MaxOps bounds history size (the memo mask is a uint64).
const MaxOps = 64

// Check reports whether h is linearizable with respect to sequential deque
// semantics. It panics if len(h) > MaxOps.
func Check(h History) bool {
	n := len(h)
	if n > MaxOps {
		panic(fmt.Sprintf("lincheck: history of %d ops exceeds MaxOps", n))
	}
	if n == 0 {
		return true
	}
	full := uint64(1)<<n - 1
	visited := make(map[string]struct{})
	model := seqdeque.New[uint32](n)
	return dfs(h, 0, full, model, visited)
}

// dfs explores linearization orders. mask holds already-linearized ops.
func dfs(h History, mask, full uint64, model *seqdeque.Deque[uint32], visited map[string]struct{}) bool {
	if mask == full {
		return true
	}
	key := stateKey(mask, model)
	if _, seen := visited[key]; seen {
		return false
	}
	visited[key] = struct{}{}

	// minRet: the earliest return among unlinearized ops. An op may be
	// linearized next only if its call precedes every unlinearized return —
	// otherwise some completed op would be ordered after an op that started
	// after it finished.
	minRet := int64(1) << 62
	for i := 0; i < len(h); i++ {
		if mask&(1<<i) == 0 && h[i].Return < minRet {
			minRet = h[i].Return
		}
	}
	for i := 0; i < len(h); i++ {
		if mask&(1<<i) != 0 || h[i].Call > minRet {
			continue
		}
		m2, ok := apply(h[i], model)
		if !ok {
			continue
		}
		if dfs(h, mask|1<<i, full, m2, visited) {
			return true
		}
	}
	return false
}

// apply replays op on a copy of the model, reporting whether the recorded
// outcome matches sequential semantics.
func apply(op Op, model *seqdeque.Deque[uint32]) (*seqdeque.Deque[uint32], bool) {
	switch op.Kind {
	case PushLeft:
		m := model.Clone()
		m.PushLeft(op.Arg)
		return m, true
	case PushRight:
		m := model.Clone()
		m.PushRight(op.Arg)
		return m, true
	case PopLeft:
		if !op.RetOK {
			if model.Empty() {
				return model, true
			}
			return nil, false
		}
		if v, ok := model.PeekLeft(); !ok || v != op.Ret {
			return nil, false
		}
		m := model.Clone()
		m.PopLeft()
		return m, true
	case PopRight:
		if !op.RetOK {
			if model.Empty() {
				return model, true
			}
			return nil, false
		}
		if v, ok := model.PeekRight(); !ok || v != op.Ret {
			return nil, false
		}
		m := model.Clone()
		m.PopRight()
		return m, true
	}
	return nil, false
}

// stateKey serializes (mask, model contents) for memoization.
func stateKey(mask uint64, model *seqdeque.Deque[uint32]) string {
	vals := model.Slice()
	buf := make([]byte, 8+4*len(vals))
	for i := 0; i < 8; i++ {
		buf[i] = byte(mask >> (8 * i))
	}
	for i, v := range vals {
		buf[8+4*i] = byte(v)
		buf[8+4*i+1] = byte(v >> 8)
		buf[8+4*i+2] = byte(v >> 16)
		buf[8+4*i+3] = byte(v >> 24)
	}
	return string(buf)
}

// Recorder hands out logical timestamps and collects per-worker logs.
type Recorder struct {
	clk atomic.Int64
}

// NewRecorder returns a fresh Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// WorkerLog is one goroutine's private operation log.
type WorkerLog struct {
	r   *Recorder
	ops []Op
}

// Worker returns a log for one goroutine.
func (r *Recorder) Worker() *WorkerLog { return &WorkerLog{r: r} }

// Push records a push operation around exec.
func (w *WorkerLog) Push(kind OpKind, arg uint32, exec func()) {
	call := w.r.clk.Add(1)
	exec()
	ret := w.r.clk.Add(1)
	w.ops = append(w.ops, Op{Kind: kind, Arg: arg, Call: call, Return: ret})
}

// Pop records a pop operation around exec.
func (w *WorkerLog) Pop(kind OpKind, exec func() (uint32, bool)) (uint32, bool) {
	call := w.r.clk.Add(1)
	v, ok := exec()
	ret := w.r.clk.Add(1)
	w.ops = append(w.ops, Op{Kind: kind, Ret: v, RetOK: ok, Call: call, Return: ret})
	return v, ok
}

// PushN records one push per element of args around a single exec — the
// batch-API contract is per-element linearizability, so each element is its
// own operation; they share the batch's [call, return] interval. Letting the
// checker order same-batch elements freely is a sound relaxation: it can
// only accept more histories, never reject a correct one.
func (w *WorkerLog) PushN(kind OpKind, args []uint32, exec func()) {
	call := w.r.clk.Add(1)
	exec()
	ret := w.r.clk.Add(1)
	for _, a := range args {
		w.ops = append(w.ops, Op{Kind: kind, Arg: a, Call: call, Return: ret})
	}
}

// PopN records one pop per value returned by exec, sharing the batch's
// interval like PushN. Only successful pops are logged; a short batch just
// contributes fewer operations.
func (w *WorkerLog) PopN(kind OpKind, exec func() []uint32) []uint32 {
	call := w.r.clk.Add(1)
	vs := exec()
	ret := w.r.clk.Add(1)
	for _, v := range vs {
		w.ops = append(w.ops, Op{Kind: kind, Ret: v, RetOK: true, Call: call, Return: ret})
	}
	return vs
}

// Ops returns the worker's log.
func (w *WorkerLog) Ops() []Op { return w.ops }

// Merge combines worker logs into one history.
func Merge(logs ...*WorkerLog) History {
	var h History
	for _, l := range logs {
		h = append(h, l.ops...)
	}
	return h
}
