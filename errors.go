package deque

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// This file is the package's single source of truth for its error contract.
//
// # Error contract
//
// Every fallible operation reports failure through exactly one of the four
// sentinels below, and every returned error satisfies errors.Is against its
// sentinel (the core package's sentinels are re-exported here by alias, so
// errors escaping from internal layers still match). The Ctx variants may
// additionally return the context's own error (context.Canceled,
// context.DeadlineExceeded) verbatim.
//
//   - ErrFull: a capacity limit was hit — the value slab of a Deque[T]
//     (WithCapacity) or the internal node-ID registry. The operation had no
//     effect; for batch pushes the returned count says how much of the
//     prefix landed. The deque remains fully usable, and pops can make
//     room.
//
//   - ErrContended: a bounded Try* operation spent its whole attempt budget
//     losing races to other threads. Nothing happened; retrying later is
//     always legal. This is the obstruction-freedom tax surfacing as an
//     error instead of unbounded spinning.
//
//   - ErrReserved: a Uint32 push of a value above MaxUint32Value (the four
//     top values encode the paper's LN/RN/LS/RS slot markers). Deque[T]
//     callers never see it — slab handles stay below the reserved range.
//
//   - ErrBadOption: New/NewUint32's functional options were contradictory
//     or out of range. Returned (wrapped, with the offending value in the
//     message) by NewChecked/NewUint32Checked; the unchecked constructors
//     panic with it instead. Construction-time only, never from operations.
//
// All four are distinct: no returned error matches two sentinels.

// ErrFull reports that a push hit a capacity limit: the value slab of a
// Deque[T] (see WithCapacity) or the internal node registry's ID space.
// The failed push had no effect.
var ErrFull = core.ErrFull

// ErrContended reports that a bounded Try* operation exhausted its attempt
// budget without completing; the deque is intact and retrying is legal.
var ErrContended = core.ErrContended

// ErrReserved is returned by Uint32 pushes of values above MaxUint32Value.
var ErrReserved = core.ErrReserved

// ErrBadOption reports an invalid construction option (non-power-of-two or
// too-small WithNodeSize, non-positive WithMaxThreads or WithCapacity,
// negative WithTracing rate). Errors returned by NewChecked and
// NewUint32Checked wrap it; match with errors.Is(err, ErrBadOption).
var ErrBadOption = errors.New("deque: invalid option")

// validate applies the construction-time option contract. Only knobs the
// caller explicitly set are checked (the *Set flags), so defaults are never
// re-validated here — core.New enforces its own invariants on them.
func (o options) validate() error {
	if o.nodeSizeSet && (o.nodeSize < core.MinNodeSize || o.nodeSize&(o.nodeSize-1) != 0) {
		return fmt.Errorf("%w: WithNodeSize(%d) must be a power of two >= %d",
			ErrBadOption, o.nodeSize, core.MinNodeSize)
	}
	if o.maxThreadsSet && o.maxThreads <= 0 {
		return fmt.Errorf("%w: WithMaxThreads(%d) must be positive", ErrBadOption, o.maxThreads)
	}
	if o.capacitySet && o.capacity <= 0 {
		return fmt.Errorf("%w: WithCapacity(%d) must be positive", ErrBadOption, o.capacity)
	}
	if o.registrySet && (o.registryLimit <= 0 || uint64(o.registryLimit) > (1<<32)-1) {
		return fmt.Errorf("%w: WithRegistryLimit(%d) must be a positive uint32", ErrBadOption, o.registryLimit)
	}
	if o.traceSample < 0 {
		return fmt.Errorf("%w: WithTracing(%d) must be non-negative", ErrBadOption, o.traceSample)
	}
	if o.latSampleSet && o.latSample < 0 {
		return fmt.Errorf("%w: WithLatencySample(%d) must be non-negative", ErrBadOption, o.latSample)
	}
	if o.reclaimSet && (o.reclaim < ReclaimGC || o.reclaim > ReclaimEpoch) {
		return fmt.Errorf("%w: WithReclamation(%d) is not a defined policy", ErrBadOption, o.reclaim)
	}
	if o.poolNodesSet && o.poolNodes <= 0 {
		return fmt.Errorf("%w: WithPoolNodes(%d) must be positive", ErrBadOption, o.poolNodes)
	}
	if o.watchdogSet && o.watchdog <= 0 {
		return fmt.Errorf("%w: WithWatchdogThreshold(%d) must be positive", ErrBadOption, o.watchdog)
	}
	if o.memLimitSet && o.nodeBudget() < 2 {
		return fmt.Errorf("%w: WithMemoryLimit(%d) admits fewer than 2 nodes of %d bytes each",
			ErrBadOption, o.memLimit, core.NodeFootprint(o.effectiveNodeSize()))
	}
	return nil
}
