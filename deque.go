// Package deque provides an unbounded, nonblocking (obstruction-free),
// linearizable concurrent double-ended queue — a Go implementation of
// Graichen, Izraelevitz, and Scott, "An Unbounded Nonblocking Double-ended
// Queue" (ICPP 2016).
//
// The structure is a doubly-linked chain of array-based nodes in the style
// of Herlihy–Luchangco–Moir, extended with node linking/unlinking so
// capacity is unbounded, and an optional elimination layer that cancels
// overlapping same-side push/pop pairs without touching the deque. See
// internal/core for the algorithm and DESIGN.md for the full map of this
// repository.
//
// # Usage
//
//	d := deque.New[string]()
//	h := d.Register()        // one handle per goroutine
//	h.PushLeft("a")
//	h.PushRight("b")
//	v, ok := h.PopRight()    // "b", true
//
// Handles are required because several internals (elimination slots, spare
// node caches) are per-thread; they are cheap and long-lived. All handle
// methods are safe to call concurrently with other handles' methods; a
// single Handle must not be shared between goroutines.
//
// Deque[T] carries values of any type by parking them in an internal
// lock-free slab and threading 32-bit handles through the algorithm's
// CAS-able slots (the paper's deque carries 32-bit values; see package
// word). Uint32 skips the indirection for the paper-faithful payload type.
package deque

import (
	"context"
	"fmt"

	"repro/internal/arena"
	"repro/internal/core"
)

// options collects construction parameters. The *Set flags record which
// knobs the caller touched, so validation can reject explicit bad values
// (WithMaxThreads(0)) while an untouched knob keeps its default.
type options struct {
	nodeSize      int
	nodeSizeSet   bool
	maxThreads    int
	maxThreadsSet bool
	elimination   bool
	capacity      int
	capacitySet   bool
	registryLimit int
	registrySet   bool
	noHotPath     bool
	traceSample   int
	traceBuf      int
	reclaim       Reclamation
	reclaimSet    bool
	poolNodes     int
	poolNodesSet  bool
	memLimit      int64
	memLimitSet   bool
	helping       bool
	watchdog      int
	watchdogSet   bool
	latSample     int
	latSampleSet  bool
}

// Option configures New and NewUint32.
type Option func(*options)

// WithNodeSize sets the slot count of each internal node (default 1024, the
// paper's choice). The size must be a power of two and at least 4; New
// rejects anything else with ErrBadOption. Smaller nodes exercise the
// linking paths more often; larger nodes amortize them further.
func WithNodeSize(n int) Option {
	return func(o *options) { o.nodeSize, o.nodeSizeSet = n, true }
}

// WithMaxThreads bounds the number of handles that may ever be registered
// (default 256). The bound must be positive; New rejects anything else with
// ErrBadOption.
func WithMaxThreads(n int) Option {
	return func(o *options) { o.maxThreads, o.maxThreadsSet = n, true }
}

// WithElimination enables the per-side elimination arrays (Section II-D of
// the paper): overlapping same-side push/pop pairs cancel without touching
// the deque. A large win for stack-like access, a small tax for queue-like
// access.
func WithElimination(on bool) Option { return func(o *options) { o.elimination = on } }

// WithCapacity bounds the number of values that may be resident at once in
// a Deque[T] (default 1<<22); the bound is exact — the (n+1)-th concurrent
// resident push returns ErrFull. The deque itself is unbounded; this sizes
// the value slab's handle space. The capacity must be positive; New
// rejects anything else with ErrBadOption. NewUint32 ignores it.
func WithCapacity(n int) Option {
	return func(o *options) { o.capacity, o.capacitySet = n, true }
}

// WithRegistryLimit bounds the lifetime number of internal node
// allocations (default 1<<26). Node IDs are never reused — removal is what
// makes them ABA-safe — so this caps a deque's total append capacity over
// its whole life: once spent, pushes needing a fresh node return ErrFull
// forever, while pops and pushes into existing slots keep working. Set it
// to bound worst-case memory in long-lived services; the limit must be
// positive or New rejects it with ErrBadOption.
func WithRegistryLimit(n int) Option {
	return func(o *options) { o.registryLimit, o.registrySet = n, true }
}

// WithHotPathOptimizations toggles the contention-engineering layer added on
// top of the paper's algorithm: per-handle edge caching with throttled
// global-hint publication, and per-handle slab freelist caches. On by
// default; turning it off reproduces the paper-faithful hot path (every
// operation reads and republishes the shared hints, every Deque[T] value
// allocation goes through the shared freelist), which is what the
// contention benchmark uses as its baseline.
func WithHotPathOptimizations(on bool) Option { return func(o *options) { o.noHotPath = !on } }

// Reclamation selects how the deque reclaims the internal nodes it removes
// from its chain; see WithReclamation.
type Reclamation int

const (
	// ReclaimGC leaves removed nodes to the garbage collector (the
	// default, and the historical behavior): node IDs are never reused and
	// every removal allocates a replacement eventually. Simplest, but
	// sustained churn allocates one node per node's worth of traffic.
	ReclaimGC Reclamation = iota
	// ReclaimHazard retires removed nodes through a hazard-domain scan and
	// recycles them via a bounded per-deque pool: steady-state churn reuses
	// nodes instead of allocating. The amortized scan allocates a small
	// snapshot per sweep.
	ReclaimHazard
	// ReclaimEpoch retires removed nodes through epoch-based reclamation:
	// nodes are recycled two global epochs after removal. The retire path
	// is allocation-free, making this the zero-allocs/op steady-state
	// configuration.
	ReclaimEpoch
)

// ParseReclamation maps the flag spellings "gc", "hazard", and "epoch" to
// a Reclamation, wrapping ErrBadOption on unknown input.
func ParseReclamation(s string) (Reclamation, error) {
	switch s {
	case "gc", "none":
		return ReclaimGC, nil
	case "hazard", "hp":
		return ReclaimHazard, nil
	case "epoch", "ebr":
		return ReclaimEpoch, nil
	}
	return 0, fmt.Errorf("%w: unknown reclamation policy %q (want gc, hazard, or epoch)", ErrBadOption, s)
}

// WithReclamation selects the node-reclamation policy (default ReclaimGC).
// The recycling policies (ReclaimHazard, ReclaimEpoch) bound steady-state
// allocation by reusing removed nodes through an internal pool; see
// DESIGN.md §10 for the safety argument and the tradeoff between the two.
func WithReclamation(r Reclamation) Option {
	return func(o *options) { o.reclaim, o.reclaimSet = r, true }
}

// WithPoolNodes bounds the recycling pool of a WithReclamation deque
// (default core.DefaultPoolNodes, currently 32): at most n removed nodes
// are retained for reuse, the rest go to the garbage collector. Ignored
// under ReclaimGC; must be positive or New rejects it with ErrBadOption.
func WithPoolNodes(n int) Option {
	return func(o *options) { o.poolNodes, o.poolNodesSet = n, true }
}

// WithMemoryLimit caps the node-structure memory the deque may retain, in
// bytes: chained nodes, nodes awaiting reclamation grace, and pooled spares
// together. A push whose node allocation would exceed the cap fails with
// ErrFull (nothing pushed, the deque stays usable, pops make room). The
// cap is converted to a whole-node budget at construction and must admit at
// least two nodes at the configured WithNodeSize, or New rejects it with
// ErrBadOption.
//
// The limit governs the deque's unbounded component — the node chain. The
// value slab of a Deque[T] is bounded separately by WithCapacity and grows
// lazily toward it; budget the two independently.
func WithMemoryLimit(bytes int64) Option {
	return func(o *options) { o.memLimit, o.memLimitSet = bytes, true }
}

// WithHelping enables the announcement/helping layer. The deque is
// obstruction-free: under an adversarial schedule a handle can lose its
// internal races indefinitely, and the default livelock watchdog only
// backs the loser off. With helping on, a handle whose failure streak
// reaches twice the watchdog threshold (see WithWatchdogThreshold)
// publishes its operation into a per-deque announcement array, and every
// other handle polls the array at a throttled cadence and completes
// announced operations on the starved handle's behalf — turning unbounded
// starvation into a bound: an announced op completes as soon as any active
// handle donates one claim's worth of attempts, regardless of the
// announcer's own schedule. Each op still linearizes exactly once; *Ctx
// cancellation of an announced op stays exact. Off by default — the
// disabled hot path pays one nil check per operation; see DESIGN.md §11
// for the protocol and its cost.
func WithHelping(on bool) Option { return func(o *options) { o.helping = on } }

// WithWatchdogThreshold sets the livelock watchdog's consecutive-failure
// streak (default 256): every threshold-long run of lost internal races
// escalates the handle's backoff to its maximum window and yields the
// processor. With WithHelping, twice this threshold is also the streak at
// which a starved op is announced for helping. The threshold must be
// positive; New rejects anything else with ErrBadOption.
func WithWatchdogThreshold(n int) Option {
	return func(o *options) { o.watchdog, o.watchdogSet = n, true }
}

// WithLatencySample sets the per-handle operation-latency sampling rate:
// every n-th single-value operation per handle records its wall-clock
// duration into the deque's log-bucketed latency histograms (see
// Metrics.Latency, LatencySnapshot, WriteLatMetricsProm). The default is
// obs-internal DefaultLatSample (currently 1024) — latency histograms are on
// by default because the sampled path costs two clock reads per n ops and
// the histograms themselves are per-handle single-writer. n == 1 times
// every operation; n == 0 disables latency recording entirely; negative
// rates are rejected with ErrBadOption. Batch operations, announce waits,
// and steal sweeps are always timed (they are amortized or rare, and
// sampling would hide exactly the tail they exist to expose) — except when
// recording is disabled, which turns those off too. Building with -tags
// obsoff compiles all of it away regardless.
func WithLatencySample(n int) Option {
	return func(o *options) { o.latSample, o.latSampleSet = n, true }
}

// WithTracing arms the sampled op tracer: every sampleRate-th operation per
// handle records a TraceRecord (op, side, transitions taken, attempts,
// duration) into a fixed ring read via TraceRecords. sampleRate 1 traces
// every operation; 0 disables tracing (the default); negative rates are
// rejected with ErrBadOption. The unsampled hot path pays one branch and
// one increment per operation.
func WithTracing(sampleRate int) Option {
	return func(o *options) { o.traceSample = sampleRate }
}

func buildOptions(opts []Option) (options, error) {
	o := options{capacity: 1 << 22}
	for _, f := range opts {
		f(&o)
	}
	return o, o.validate()
}

// effectiveNodeSize is the node size core.New will use, defaults applied —
// the memory-limit budget math needs it before core.New runs.
func (o options) effectiveNodeSize() int {
	if o.nodeSize == 0 {
		return core.DefaultNodeSize
	}
	return o.nodeSize
}

// nodeBudget converts the byte limit into a whole-node live bound at the
// effective node size. Only meaningful when memLimitSet.
func (o options) nodeBudget() int64 {
	return o.memLimit / core.NodeFootprint(o.effectiveNodeSize())
}

func (o options) coreConfig() core.Config {
	cfg := core.Config{
		NodeSize:          o.nodeSize,
		MaxThreads:        o.maxThreads,
		Elimination:       o.elimination,
		NoEdgeCache:       o.noHotPath,
		TraceSample:       o.traceSample,
		TraceBuf:          o.traceBuf,
		RegistryLimit:     uint32(o.registryLimit),
		PoolNodes:         o.poolNodes,
		Helping:           o.helping,
		WatchdogThreshold: o.watchdog,
	}
	if o.latSampleSet {
		if o.latSample == 0 {
			cfg.LatSample = -1 // explicit 0 means "off"; core's 0 means "default"
		} else {
			cfg.LatSample = o.latSample
		}
	}
	switch o.reclaim {
	case ReclaimHazard:
		cfg.Reclaim = core.ReclaimHazard
	case ReclaimEpoch:
		cfg.Reclaim = core.ReclaimEpoch
	}
	if o.memLimitSet {
		b := o.nodeBudget()
		if b > int64(^uint32(0)) {
			b = int64(^uint32(0))
		}
		cfg.MaxLiveNodes = uint32(b)
	}
	return cfg
}

// Deque is an unbounded concurrent double-ended queue of T.
type Deque[T any] struct {
	core      *core.Deque
	slab      *arena.Slab[T]
	noHotPath bool
}

// New returns an empty Deque[T]. It panics on invalid options (see
// ErrBadOption); use NewChecked to receive the error instead.
func New[T any](opts ...Option) *Deque[T] {
	d, err := NewChecked[T](opts...)
	if err != nil {
		panic(err)
	}
	return d
}

// NewChecked is New returning invalid options as an error wrapping
// ErrBadOption instead of panicking — the route for configuration that
// arrives from outside the program (flags, config files).
func NewChecked[T any](opts ...Option) (*Deque[T], error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return &Deque[T]{
		core:      core.New(o.coreConfig()),
		slab:      arena.NewSlab[T](uint32(o.capacity)),
		noHotPath: o.noHotPath,
	}, nil
}

// Register returns a Handle for the calling goroutine. It panics when more
// than MaxThreads handles are registered.
func (d *Deque[T]) Register() *Handle[T] {
	h := &Handle[T]{d: d, h: d.core.Register()}
	if !d.noHotPath {
		h.sh = d.slab.NewHandle()
	}
	return h
}

// Len returns the number of stored values. It is exact only in quiescence
// (no concurrent operations); use it for tests, stats, and shutdown checks.
func (d *Deque[T]) Len() int { return d.core.Len() }

// Handle is a per-goroutine accessor to a Deque[T]. Not safe for concurrent
// use; register one per goroutine.
type Handle[T any] struct {
	d       *Deque[T]
	h       *core.Handle
	sh      *arena.SlabHandle[T] // nil when hot-path optimizations are off
	scratch []uint32             // reusable slab-handle buffer for batch ops
}

// put parks v in the value slab through the handle's freelist cache,
// reporting ErrFull when the slab's occupancy limit is reached.
func (h *Handle[T]) put(v T) (uint32, error) {
	var (
		hv  uint32
		err error
	)
	if h.sh != nil {
		hv, err = h.sh.TryPut(v)
	} else {
		hv, err = h.d.slab.TryPut(v)
	}
	if err != nil {
		return 0, ErrFull
	}
	return hv, nil
}

// take retrieves and frees the slab entry hv.
func (h *Handle[T]) take(hv uint32) T {
	if h.sh != nil {
		return h.sh.Take(hv)
	}
	return h.d.slab.Take(hv)
}

// PushLeft inserts v at the left end. It returns nil on success or ErrFull
// when the deque's value capacity (WithCapacity) or internal node registry
// is exhausted; an ErrFull push has no effect. Earlier versions panicked
// (or silently dropped the condition); callers that sized capacity
// generously may still safely ignore the error.
func (h *Handle[T]) PushLeft(v T) error {
	hv, err := h.put(v)
	if err != nil {
		return err
	}
	if err := h.d.core.PushLeft(h.h, hv); err != nil {
		// Only ErrFull is reachable: slab handles are below the
		// reserved range, so ErrReserved cannot occur.
		h.take(hv)
		return err
	}
	return nil
}

// PushRight inserts v at the right end; errors as PushLeft.
func (h *Handle[T]) PushRight(v T) error {
	hv, err := h.put(v)
	if err != nil {
		return err
	}
	if err := h.d.core.PushRight(h.h, hv); err != nil {
		h.take(hv)
		return err
	}
	return nil
}

// PopLeft removes and returns the leftmost value; ok is false when the
// deque was empty.
func (h *Handle[T]) PopLeft() (v T, ok bool) {
	hv, ok := h.d.core.PopLeft(h.h)
	if !ok {
		return v, false
	}
	return h.take(hv), true
}

// PopRight removes and returns the rightmost value; ok is false when the
// deque was empty.
func (h *Handle[T]) PopRight() (v T, ok bool) {
	hv, ok := h.d.core.PopRight(h.h)
	if !ok {
		return v, false
	}
	return h.take(hv), true
}

// PushLeftCtx is PushLeft, aborting with ctx.Err() once ctx is cancelled.
// Cancellation is exact: a non-nil error means nothing was pushed.
func (h *Handle[T]) PushLeftCtx(ctx context.Context, v T) error {
	hv, err := h.put(v)
	if err != nil {
		return err
	}
	if err := h.d.core.PushLeftCtx(ctx, h.h, hv); err != nil {
		h.take(hv)
		return err
	}
	return nil
}

// PushRightCtx mirrors PushLeftCtx.
func (h *Handle[T]) PushRightCtx(ctx context.Context, v T) error {
	hv, err := h.put(v)
	if err != nil {
		return err
	}
	if err := h.d.core.PushRightCtx(ctx, h.h, hv); err != nil {
		h.take(hv)
		return err
	}
	return nil
}

// PopLeftCtx is PopLeft, aborting with ctx.Err() once ctx is cancelled.
// ok is meaningful only when err is nil; err non-nil means nothing was
// popped.
func (h *Handle[T]) PopLeftCtx(ctx context.Context) (v T, ok bool, err error) {
	hv, ok, err := h.d.core.PopLeftCtx(ctx, h.h)
	if err != nil || !ok {
		return v, false, err
	}
	return h.take(hv), true, nil
}

// PopRightCtx mirrors PopLeftCtx.
func (h *Handle[T]) PopRightCtx(ctx context.Context) (v T, ok bool, err error) {
	hv, ok, err := h.d.core.PopRightCtx(ctx, h.h)
	if err != nil || !ok {
		return v, false, err
	}
	return h.take(hv), true, nil
}

// TryPushLeft is PushLeft bounded to at most attempts retry cycles
// (minimum 1), returning ErrContended — nothing pushed — when other
// threads kept winning races for the whole budget.
func (h *Handle[T]) TryPushLeft(v T, attempts int) error {
	hv, err := h.put(v)
	if err != nil {
		return err
	}
	if err := h.d.core.TryPushLeft(h.h, hv, attempts); err != nil {
		h.take(hv)
		return err
	}
	return nil
}

// TryPushRight mirrors TryPushLeft.
func (h *Handle[T]) TryPushRight(v T, attempts int) error {
	hv, err := h.put(v)
	if err != nil {
		return err
	}
	if err := h.d.core.TryPushRight(h.h, hv, attempts); err != nil {
		h.take(hv)
		return err
	}
	return nil
}

// TryPopLeft is PopLeft bounded to at most attempts retry cycles; err is
// ErrContended (nothing popped) when the budget is spent. ok is meaningful
// only when err is nil.
func (h *Handle[T]) TryPopLeft(attempts int) (v T, ok bool, err error) {
	hv, ok, err := h.d.core.TryPopLeft(h.h, attempts)
	if err != nil || !ok {
		return v, false, err
	}
	return h.take(hv), true, nil
}

// TryPopRight mirrors TryPopLeft.
func (h *Handle[T]) TryPopRight(attempts int) (v T, ok bool, err error) {
	hv, ok, err := h.d.core.TryPopRight(h.h, attempts)
	if err != nil || !ok {
		return v, false, err
	}
	return h.take(hv), true, nil
}

// buf returns the handle's scratch buffer with room for n slab handles.
func (h *Handle[T]) buf(n int) []uint32 {
	if cap(h.scratch) < n {
		h.scratch = make([]uint32, n)
	}
	return h.scratch[:n]
}

// putN parks vs[0:] in the slab, filling hvs. On exhaustion it takes back
// every entry it already parked and returns ErrFull (nothing retained).
func (h *Handle[T]) putN(vs []T, hvs []uint32) error {
	for i, v := range vs {
		hv, err := h.put(v)
		if err != nil {
			for j := 0; j < i; j++ {
				h.take(hvs[j])
			}
			return err
		}
		hvs[i] = hv
	}
	return nil
}

// PushLeftN pushes the elements of vs in order, each becoming the new
// leftmost — equivalent to calling PushLeft per element, but the slab
// allocations and edge transitions are batched. On ErrFull the returned
// count reports how many elements landed; like the equivalent individual
// pushes, the prefix vs[:n] stays pushed and vs[n:] had no effect.
func (h *Handle[T]) PushLeftN(vs []T) (int, error) {
	if len(vs) == 0 {
		return 0, nil
	}
	hvs := h.buf(len(vs))
	if err := h.putN(vs, hvs); err != nil {
		return 0, err
	}
	n, err := h.d.core.PushLeftN(h.h, hvs)
	if err != nil {
		for _, hv := range hvs[n:] {
			h.take(hv)
		}
	}
	return n, err
}

// PushRightN pushes the elements of vs in order, each becoming the new
// rightmost — equivalent to calling PushRight per element; errors as
// PushLeftN.
func (h *Handle[T]) PushRightN(vs []T) (int, error) {
	if len(vs) == 0 {
		return 0, nil
	}
	hvs := h.buf(len(vs))
	if err := h.putN(vs, hvs); err != nil {
		return 0, err
	}
	n, err := h.d.core.PushRightN(h.h, hvs)
	if err != nil {
		for _, hv := range hvs[n:] {
			h.take(hv)
		}
	}
	return n, err
}

// PopLeftN pops up to len(dst) values from the left end into dst in pop
// order, stopping early when the deque is empty.
//
// The returned n int is the exact count popped: dst[:n] holds the values
// and dst[n:] is untouched. n pairs with the batch-push prefix contract —
// after a PushRightN truncated to (k, ErrFull), draining pops observe
// exactly the pushed prefix vs[:k], in order, and nothing of vs[k:].
func (h *Handle[T]) PopLeftN(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	hvs := h.buf(len(dst))
	n := h.d.core.PopLeftN(h.h, hvs)
	for i := 0; i < n; i++ {
		dst[i] = h.take(hvs[i])
	}
	return n
}

// PopRightN pops up to len(dst) values from the right end into dst in pop
// order. The returned n int is the exact count popped: dst[:n] holds the
// values, dst[n:] is untouched (see PopLeftN for the full contract).
func (h *Handle[T]) PopRightN(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	hvs := h.buf(len(dst))
	n := h.d.core.PopRightN(h.h, hvs)
	for i := 0; i < n; i++ {
		dst[i] = h.take(hvs[i])
	}
	return n
}

// Flush returns the handle's cached slab capacity to the shared freelists
// and drains its deferred node-reclamation work (pending retires and
// whatever the grace domain will release). Call it before parking a handle
// for a long time — an idle handle otherwise delays node recycling for the
// whole deque — and when a goroutine is done with its handle for good. The
// handle remains usable; a dropped unflushed handle only strands its cached
// indices and pending retires (both bounded), it does not leak values.
func (h *Handle[T]) Flush() {
	if h.sh != nil {
		h.sh.Flush()
	}
	h.h.Drain()
}

// Eliminated reports how many of this handle's operations completed via
// elimination (always 0 unless WithElimination was set).
func (h *Handle[T]) Eliminated() uint64 { return h.h.Eliminated }

// Stats is a snapshot of a handle's operation counters.
type Stats = core.Stats

// Stats returns a copy of this handle's counters.
func (h *Handle[T]) Stats() Stats { return h.h.Stats() }

// Uint32 is the paper-faithful deque over raw uint32 payloads: no value
// slab, values live directly in the 64-bit CAS slots. Values must be at
// most MaxUint32Value.
type Uint32 struct {
	core *core.Deque
}

// MaxUint32Value is the largest value a Uint32 deque can store; the four
// values above it are reserved slot markers (LN/RN/LS/RS in the paper).
const MaxUint32Value = 0xFFFFFFFB

// NewUint32 returns an empty Uint32 deque. It panics on invalid options
// (see ErrBadOption); use NewUint32Checked to receive the error instead.
func NewUint32(opts ...Option) *Uint32 {
	d, err := NewUint32Checked(opts...)
	if err != nil {
		panic(err)
	}
	return d
}

// NewUint32Checked is NewUint32 returning invalid options as an error
// wrapping ErrBadOption instead of panicking.
func NewUint32Checked(opts ...Option) (*Uint32, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return &Uint32{core: core.New(o.coreConfig())}, nil
}

// Register returns a handle for the calling goroutine.
func (d *Uint32) Register() *Uint32Handle {
	return &Uint32Handle{d: d, h: d.core.Register()}
}

// Len returns the number of stored values; exact only in quiescence.
func (d *Uint32) Len() int { return d.core.Len() }

// Uint32Handle is a per-goroutine accessor to a Uint32 deque.
type Uint32Handle struct {
	d *Uint32
	h *core.Handle
}

// PushLeft inserts v at the left end; ErrReserved if v > MaxUint32Value,
// ErrFull (nothing pushed) if the node registry's ID space is exhausted.
func (h *Uint32Handle) PushLeft(v uint32) error { return h.d.core.PushLeft(h.h, v) }

// PushRight inserts v at the right end; errors as PushLeft.
func (h *Uint32Handle) PushRight(v uint32) error { return h.d.core.PushRight(h.h, v) }

// PopLeft removes and returns the leftmost value; ok is false when empty.
func (h *Uint32Handle) PopLeft() (uint32, bool) { return h.d.core.PopLeft(h.h) }

// PopRight removes and returns the rightmost value; ok is false when empty.
func (h *Uint32Handle) PopRight() (uint32, bool) { return h.d.core.PopRight(h.h) }

// PushLeftCtx is PushLeft, aborting with ctx.Err() once ctx is cancelled;
// a non-nil error means nothing was pushed.
func (h *Uint32Handle) PushLeftCtx(ctx context.Context, v uint32) error {
	return h.d.core.PushLeftCtx(ctx, h.h, v)
}

// PushRightCtx mirrors PushLeftCtx.
func (h *Uint32Handle) PushRightCtx(ctx context.Context, v uint32) error {
	return h.d.core.PushRightCtx(ctx, h.h, v)
}

// PopLeftCtx is PopLeft, aborting with ctx.Err() once ctx is cancelled.
// ok is meaningful only when err is nil.
func (h *Uint32Handle) PopLeftCtx(ctx context.Context) (uint32, bool, error) {
	return h.d.core.PopLeftCtx(ctx, h.h)
}

// PopRightCtx mirrors PopLeftCtx.
func (h *Uint32Handle) PopRightCtx(ctx context.Context) (uint32, bool, error) {
	return h.d.core.PopRightCtx(ctx, h.h)
}

// TryPushLeft is PushLeft bounded to at most attempts retry cycles
// (minimum 1); ErrContended means the budget was spent and nothing was
// pushed.
func (h *Uint32Handle) TryPushLeft(v uint32, attempts int) error {
	return h.d.core.TryPushLeft(h.h, v, attempts)
}

// TryPushRight mirrors TryPushLeft.
func (h *Uint32Handle) TryPushRight(v uint32, attempts int) error {
	return h.d.core.TryPushRight(h.h, v, attempts)
}

// TryPopLeft is PopLeft bounded to at most attempts retry cycles; ok is
// meaningful only when err is nil.
func (h *Uint32Handle) TryPopLeft(attempts int) (uint32, bool, error) {
	return h.d.core.TryPopLeft(h.h, attempts)
}

// TryPopRight mirrors TryPopLeft.
func (h *Uint32Handle) TryPopRight(attempts int) (uint32, bool, error) {
	return h.d.core.TryPopRight(h.h, attempts)
}

// PushLeftN pushes the elements of vs in order, each becoming the new
// leftmost; ErrReserved (pushing nothing) if any exceeds MaxUint32Value.
// On ErrFull the returned count reports how many elements landed; the
// prefix vs[:n] stays pushed, exactly as individual pushes would have.
func (h *Uint32Handle) PushLeftN(vs []uint32) (int, error) { return h.d.core.PushLeftN(h.h, vs) }

// PushRightN pushes the elements of vs in order, each becoming the new
// rightmost; errors as PushLeftN.
func (h *Uint32Handle) PushRightN(vs []uint32) (int, error) { return h.d.core.PushRightN(h.h, vs) }

// PopLeftN pops up to len(dst) values from the left end into dst in pop
// order, stopping early when the deque is empty. The returned n int is
// the exact count popped: dst[:n] holds the values, dst[n:] is untouched
// — after a PushRightN truncated to (k, ErrFull), draining pops observe
// exactly the pushed prefix vs[:k] and nothing of vs[k:].
func (h *Uint32Handle) PopLeftN(dst []uint32) int { return h.d.core.PopLeftN(h.h, dst) }

// PopRightN pops up to len(dst) values from the right end into dst in pop
// order. The returned n int is the exact count popped: dst[:n] holds the
// values, dst[n:] is untouched (see PopLeftN for the full contract).
func (h *Uint32Handle) PopRightN(dst []uint32) int { return h.d.core.PopRightN(h.h, dst) }

// Flush drains this handle's deferred node-reclamation work (pending
// retires and whatever the grace domain will release). Call it before
// parking a handle for a long time — an idle handle otherwise delays node
// recycling for the whole deque. The handle remains usable; a no-op under
// ReclaimGC.
func (h *Uint32Handle) Flush() { h.h.Drain() }

// Eliminated reports how many of this handle's operations completed via
// elimination.
func (h *Uint32Handle) Eliminated() uint64 { return h.h.Eliminated }

// Stats returns a copy of this handle's counters.
func (h *Uint32Handle) Stats() Stats { return h.h.Stats() }
