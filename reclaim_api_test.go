package deque

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// Public-API coverage for the reclamation options: flag parsing, option
// validation, recycling through Deque[T], and the WithMemoryLimit -> ErrFull
// contract.

func TestParseReclamation(t *testing.T) {
	cases := []struct {
		in   string
		want Reclamation
	}{
		{"gc", ReclaimGC}, {"none", ReclaimGC},
		{"hazard", ReclaimHazard}, {"hp", ReclaimHazard},
		{"epoch", ReclaimEpoch}, {"ebr", ReclaimEpoch},
	}
	for _, tc := range cases {
		got, err := ParseReclamation(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseReclamation(%q) = (%v, %v), want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "GC", "hazard ", "generational"} {
		if _, err := ParseReclamation(bad); !errors.Is(err, ErrBadOption) {
			t.Errorf("ParseReclamation(%q) err = %v, want ErrBadOption", bad, err)
		}
	}
}

func TestReclaimOptionsRejected(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"undefined policy", []Option{WithReclamation(Reclamation(42))}},
		{"negative policy", []Option{WithReclamation(Reclamation(-1))}},
		{"pool zero", []Option{WithPoolNodes(0)}},
		{"pool negative", []Option{WithPoolNodes(-4)}},
		{"memory limit zero", []Option{WithMemoryLimit(0)}},
		{"memory limit negative", []Option{WithMemoryLimit(-1)}},
		{"memory limit below two nodes", []Option{
			WithNodeSize(64), WithMemoryLimit(core.NodeFootprint(64))}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewChecked[int](tc.opts...); !errors.Is(err, ErrBadOption) {
				t.Fatalf("NewChecked err = %v, want ErrBadOption", err)
			}
		})
	}
}

func TestRecyclingThroughGenericAPI(t *testing.T) {
	for _, tc := range []struct {
		name string
		r    Reclamation
	}{
		{"hazard", ReclaimHazard},
		{"epoch", ReclaimEpoch},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := New[int](WithNodeSize(4), WithReclamation(tc.r), WithPoolNodes(8))
			h := d.Register()
			for i := 0; i < 2000; i++ {
				if err := h.PushLeft(i); err != nil {
					t.Fatalf("push %d: %v", i, err)
				}
				if v, ok := h.PopRight(); !ok || v != i {
					t.Fatalf("pop %d = (%d, %v)", i, v, ok)
				}
			}
			h.Flush() // drains pending retires through the grace domain
			m := d.Metrics()
			if m.NodesRetired == 0 || m.NodesRecycled == 0 {
				t.Fatalf("retired=%d recycled=%d: node recycling not engaged",
					m.NodesRetired, m.NodesRecycled)
			}
			if m.MemNodesHighWater == 0 || m.MemNodesHighWater > 128 {
				t.Fatalf("node high-water %d: want small bounded footprint",
					m.MemNodesHighWater)
			}
		})
	}
}

func TestMemoryLimitErrFullAndRecovery(t *testing.T) {
	// Budget exactly 6 nodes at node size 4.
	const nodes = 6
	d := NewUint32(WithNodeSize(4), WithReclamation(ReclaimEpoch),
		WithPoolNodes(4), WithMemoryLimit(nodes*core.NodeFootprint(4)))
	h := d.Register()
	if m := d.Metrics(); m.MemLimitNodes != nodes {
		t.Fatalf("MemLimitNodes = %d, want %d", m.MemLimitNodes, nodes)
	}
	var pushed int
	for i := 0; i < 10*nodes; i++ {
		err := h.PushLeft(uint32(i))
		if errors.Is(err, ErrFull) {
			break
		}
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		pushed++
	}
	if pushed == 10*nodes {
		t.Fatalf("bound of %d nodes never tripped after %d pushes", nodes, pushed)
	}
	if m := d.Metrics(); m.MemNodesHighWater > nodes {
		t.Fatalf("high-water %d exceeds bound %d", m.MemNodesHighWater, nodes)
	}
	// Pops make room again; the deque stays fully usable.
	for i := 0; i < pushed; i++ {
		if _, ok := h.PopRight(); !ok {
			t.Fatalf("pop %d of %d failed", i, pushed)
		}
	}
	h.Flush()
	if err := h.PushLeft(7); err != nil {
		t.Fatalf("push after drain: %v", err)
	}
	if v, ok := h.PopLeft(); !ok || v != 7 {
		t.Fatalf("PopLeft = (%d, %v) after recovery", v, ok)
	}
}
