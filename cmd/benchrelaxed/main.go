// Command benchrelaxed measures the strict-vs-relaxed trade and writes
// BENCH_relaxed.json: the alternating push/pop workload at each shard
// count in the sweep, once through a plain Pool (key-0 routing — exactly
// what a strict Relaxed handle delegates to) and once through the
// d-choice Relaxed front-end, reporting throughput plus the observed
// rank error (max and mean) the relaxation actually produced. See
// scripts/bench_relaxed.sh and scripts/relaxed_overhead.sh.
//
// Single-arm modes (-mode pool, -mode strict, -mode relaxed) emit one
// {"ops_per_sec": {...}, "host": {...}} run for A/B scripts; -mode curve
// (the default) writes the full report. -gate-rank-bound turns the
// configured bound into an exit status: any relaxed measurement whose
// observed max rank error exceeds it fails the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	dq "repro"
	"repro/internal/hostmeta"
)

// armResult is one (arm, shards, threads) measurement.
type armResult struct {
	opsPerSec float64
	rankMax   uint64
	rankMean  float64
}

// run is one arm's sweep, keyed by goroutine count.
type run struct {
	Label     string             `json:"label"`
	Arm       string             `json:"arm"`
	Shards    int                `json:"shards"`
	D         int                `json:"d,omitempty"`
	RankBound int                `json:"rank_bound,omitempty"`
	OpsPerSec map[string]float64 `json:"ops_per_sec"`
	// RankErrMax/RankErrMean report the observed relaxation per thread
	// count (relaxed arm only; the strict arms are in-order by shard).
	RankErrMax  map[string]uint64  `json:"rank_err_max,omitempty"`
	RankErrMean map[string]float64 `json:"rank_err_mean,omitempty"`
	TrialsUsed  int                `json:"trials"`
}

type report struct {
	Generated string        `json:"generated"`
	Host      hostmeta.Host `json:"host"`
	Workload  string        `json:"workload"`
	DurationS float64       `json:"duration_s"`
	Threads   []int         `json:"threads"`
	Shards    []int         `json:"shards"`
	D         int           `json:"d"`
	RankBound int           `json:"rank_bound"`
	Strict    []run         `json:"strict"`
	Relaxed   []run         `json:"relaxed"`
	// Speedup is relaxed/strict throughput keyed "shards/threads".
	Speedup map[string]float64 `json:"speedup_relaxed_over_strict"`
}

func main() {
	var (
		duration    = flag.Duration("duration", 500*time.Millisecond, "measured run length per trial")
		trials      = flag.Int("trials", 3, "trials per configuration (throughput is the mean)")
		threadsFlag = flag.String("threads", "1,4,16", "comma-separated goroutine counts")
		shardsFlag  = flag.String("shards", "1,4,16", "comma-separated shard counts (curve mode)")
		dFlag       = flag.Int("d", 2, "d-choice sample width for the relaxed arm (clamped to the shard count)")
		rankBound   = flag.Int("rank-bound", 0, "rank-error bound for the relaxed arm (0 = unbounded)")
		prefill     = flag.Int("prefill", 1024, "elements inserted before measuring")
		mode        = flag.String("mode", "curve", "curve (full report), or one arm: pool, strict, relaxed")
		out         = flag.String("out", "BENCH_relaxed.json", "output path")
		gate        = flag.Bool("gate-rank-bound", false, "exit 1 if any relaxed measurement's observed max rank error exceeds -rank-bound")
	)
	flag.Parse()

	threads, err := parseInts(*threadsFlag)
	if err != nil || len(threads) == 0 {
		fatalf("bad -threads: %v", err)
	}
	shardCounts, err := parseInts(*shardsFlag)
	if err != nil || len(shardCounts) == 0 {
		fatalf("bad -shards: %v", err)
	}
	if *gate && *rankBound <= 0 {
		fatalf("-gate-rank-bound needs a positive -rank-bound")
	}

	cfg := benchConfig{
		duration: *duration,
		trials:   *trials,
		prefill:  *prefill,
		d:        *dFlag,
		bound:    *rankBound,
	}

	gateOK := true
	sweep := func(arm string, shards int) run {
		r := run{
			Label:      fmt.Sprintf("%s shards=%d", arm, shards),
			Arm:        arm,
			Shards:     shards,
			OpsPerSec:  map[string]float64{},
			TrialsUsed: *trials,
		}
		if arm == "relaxed" {
			r.D = min(cfg.d, shards)
			r.RankBound = cfg.bound
			r.RankErrMax = map[string]uint64{}
			r.RankErrMean = map[string]float64{}
		}
		for _, t := range threads {
			res := measure(arm, shards, t, cfg)
			key := strconv.Itoa(t)
			r.OpsPerSec[key] = res.opsPerSec
			line := fmt.Sprintf("  %-22s t=%-3d %14.0f ops/s", r.Label, t, res.opsPerSec)
			if arm == "relaxed" {
				r.RankErrMax[key] = res.rankMax
				r.RankErrMean[key] = res.rankMean
				line += fmt.Sprintf("  rank err max=%d mean=%.2f", res.rankMax, res.rankMean)
				if *gate && res.rankMax > uint64(cfg.bound) {
					gateOK = false
					line += fmt.Sprintf("  GATE: exceeds bound %d", cfg.bound)
				}
			}
			fmt.Fprintln(os.Stderr, line)
		}
		return r
	}

	switch *mode {
	case "pool", "strict", "relaxed":
		// Single-arm run for A/B scripts: same shape helping_overhead.sh
		// reads (ops_per_sec keyed by thread count, host for the
		// equal-GOMAXPROCS assertion).
		r := sweep(*mode, shardCounts[0])
		writeJSON(*out, struct {
			run
			Host hostmeta.Host `json:"host"`
		}{r, hostmeta.Collect()})
		fmt.Fprintf(os.Stderr, "wrote %s arm to %s\n", *mode, *out)

	case "curve":
		var strict, relaxed []run
		speedup := map[string]float64{}
		for _, s := range shardCounts {
			fmt.Fprintf(os.Stderr, "== shards=%d ==\n", s)
			ps := sweep("pool", s)
			rs := sweep("relaxed", s)
			strict = append(strict, ps)
			relaxed = append(relaxed, rs)
			for _, t := range threads {
				key := strconv.Itoa(t)
				if base := ps.OpsPerSec[key]; base > 0 {
					speedup[fmt.Sprintf("%d/%s", s, key)] = rs.OpsPerSec[key] / base
				}
			}
		}
		rep := report{
			Generated: time.Now().UTC().Format(time.RFC3339),
			Host:      hostmeta.Collect(),
			Workload:  fmt.Sprintf("alternating push-left/pop-right on uint32, prefill %d", *prefill),
			DurationS: duration.Seconds(),
			Threads:   threads,
			Shards:    shardCounts,
			D:         *dFlag,
			RankBound: *rankBound,
			Strict:    strict,
			Relaxed:   relaxed,
			Speedup:   speedup,
		}
		writeJSON(*out, rep)
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)

	default:
		fatalf("unknown -mode %q (want curve, pool, strict, or relaxed)", *mode)
	}

	if *gate {
		if !gateOK {
			fatalf("rank-bound gate: FAIL — observed rank error exceeded the configured bound %d", *rankBound)
		}
		fmt.Fprintln(os.Stderr, "rank-bound gate: PASS")
	}
}

type benchConfig struct {
	duration time.Duration
	trials   int
	prefill  int
	d        int
	bound    int
}

// pusherPopper is the per-worker op pair every arm reduces to, so the
// measured loop is identical across arms.
type pusherPopper struct {
	push func(uint32) error
	pop  func() (uint32, bool)
	done func()
}

// measure runs cfg.trials trials of the alternating workload and returns
// the mean throughput; for the relaxed arm it also merges the observed
// rank-error snapshot across trials (max of maxes, pop-weighted mean).
func measure(arm string, shards, threads int, cfg benchConfig) armResult {
	var (
		sum      float64
		rankMax  uint64
		rankSum  uint64
		rankPops uint64
	)
	for trial := 0; trial < cfg.trials; trial++ {
		ops, m := runTrial(arm, shards, threads, cfg)
		sum += ops
		if m.RankMax > rankMax {
			rankMax = m.RankMax
		}
		rankSum += m.RankSum
		rankPops += m.Pops
	}
	res := armResult{opsPerSec: sum / float64(cfg.trials), rankMax: rankMax}
	if rankPops > 0 {
		res.rankMean = float64(rankSum) / float64(rankPops)
	}
	return res
}

// runTrial builds a fresh structure, prefills it, and drives the
// alternating push-left/pop-right loop on `threads` goroutines for the
// configured duration.
func runTrial(arm string, shards, threads int, cfg benchConfig) (opsPerSec float64, m dq.RelaxMetrics) {
	shardOpts := dq.WithShardOptions(dq.WithMaxThreads(threads + 1))
	var (
		rx      *dq.Relaxed[uint32]
		pool    *dq.Pool[uint32]
		workers = make([]pusherPopper, threads)
		seed    pusherPopper
	)
	mkRelaxed := func(d int) {
		opts := []dq.RelaxedOption{
			dq.WithRelaxation(min(d, shards)),
			dq.WithRelaxedPool(shardOpts),
		}
		if cfg.bound > 0 {
			opts = append(opts, dq.WithRankBound(cfg.bound))
		}
		rx = dq.NewRelaxed[uint32](shards, opts...)
		mk := func() pusherPopper {
			h := rx.Register()
			return pusherPopper{push: h.PushLeft, pop: h.PopRight, done: h.Flush}
		}
		for i := range workers {
			workers[i] = mk()
		}
		seed = mk()
	}
	switch arm {
	case "pool":
		pool = dq.NewPool[uint32](shards, shardOpts)
		mk := func() pusherPopper {
			h := pool.Register()
			return pusherPopper{
				push: func(v uint32) error { return h.PushLeft(0, v) },
				pop:  func() (uint32, bool) { return h.PopRight(0) },
				done: h.Flush,
			}
		}
		for i := range workers {
			workers[i] = mk()
		}
		seed = mk()
	case "strict":
		mkRelaxed(0)
	case "relaxed":
		mkRelaxed(cfg.d)
	default:
		fatalf("unknown arm %q", arm)
	}

	for i := 0; i < cfg.prefill; i++ {
		if err := seed.push(uint32(i)); err != nil {
			fatalf("prefill: %v", err)
		}
	}
	seed.done()

	var (
		stop  atomic.Bool
		total atomic.Uint64
		wg    sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(pp pusherPopper, tag uint32) {
			defer wg.Done()
			var ops uint64
			v := tag << 16
			for !stop.Load() {
				if err := pp.push(v); err != nil {
					fatalf("push: %v", err)
				}
				pp.pop()
				ops += 2
				v++
			}
			pp.done()
			total.Add(ops)
		}(workers[w], uint32(w))
	}
	time.Sleep(cfg.duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	if rx != nil {
		m = rx.RelaxMetrics()
	}
	return float64(total.Load()) / elapsed, m
}

func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("value %d must be positive", n)
		}
		out = append(out, n)
	}
	return out, nil
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchrelaxed: "+format+"\n", args...)
	os.Exit(1)
}
