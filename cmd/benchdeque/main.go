// Command benchdeque runs one point (or a thread sweep) of the paper's
// microbenchmark and prints human-readable rows or CSV.
//
// Examples:
//
//	benchdeque -structure of-elim -pattern stack -threads 1,2,4,8 -duration 1s
//	benchdeque -structure all -pattern queue -threads 4 -csv
//	benchdeque -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		structure = flag.String("structure", "of", "structure name, or 'all' for every structure, or 'paper' for the paper's set")
		pattern   = flag.String("pattern", "deque", "access pattern: deque, stack, or queue")
		threads   = flag.String("threads", "1", "comma-separated worker counts, e.g. 1,2,4,8")
		duration  = flag.Duration("duration", time.Second, "measured duration per trial")
		trials    = flag.Int("trials", 5, "trials per configuration (the paper uses 5)")
		prefill   = flag.Int("prefill", 0, "elements inserted before measuring")
		pin       = flag.Bool("pin", true, "lock each worker to an OS thread")
		seed      = flag.Uint64("seed", 1, "base RNG seed")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned rows")
		list      = flag.Bool("list", false, "list structure names and exit")
		latency   = flag.Bool("latency", false, "measure per-operation latency percentiles instead of throughput")
	)
	flag.Parse()

	if *list {
		for _, n := range bench.StructureNames() {
			fmt.Println(n)
		}
		return
	}

	var names []string
	switch *structure {
	case "all":
		names = bench.StructureNames()
	case "paper":
		names = bench.PaperStructures
	default:
		names = strings.Split(*structure, ",")
	}

	var threadCounts []int
	for _, f := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad thread count %q\n", f)
			os.Exit(2)
		}
		threadCounts = append(threadCounts, n)
	}

	if *csv {
		fmt.Println("structure,pattern,threads,ops_per_sec,stddev,trials,gomaxprocs")
	} else {
		fmt.Printf("# GOMAXPROCS=%d duration=%v trials=%d prefill=%d\n",
			runtime.GOMAXPROCS(0), *duration, *trials, *prefill)
	}
	for _, name := range names {
		for _, t := range threadCounts {
			cfg := bench.Config{
				Structure: name,
				Pattern:   bench.Pattern(*pattern),
				Threads:   t,
				Duration:  *duration,
				Trials:    *trials,
				Prefill:   *prefill,
				Pin:       *pin,
				Seed:      *seed,
			}
			if *latency {
				lr, err := bench.RunLatency(cfg)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("%-14s %-6s t=%-3d %s\n", name, *pattern, t, lr.Hist)
				continue
			}
			r, err := bench.Run(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if *csv {
				fmt.Printf("%s,%s,%d,%.0f,%.0f,%d,%d\n",
					name, *pattern, t, r.Summary.Mean, r.Summary.Stddev,
					*trials, runtime.GOMAXPROCS(0))
			} else {
				fmt.Println(r)
			}
		}
	}
}
