// Command benchreclaim measures the node-reclamation A/B and writes
// BENCH_reclaim.json: the mixed 4-way push/pop workload on a small-node
// Deque[uint32] (small nodes cross node boundaries constantly, so node
// churn dominates) under each reclamation policy — gc (no recycling, the
// historical behavior), hazard, and epoch. The headline numbers are
// allocs/op per policy: the recycling policies reuse removed nodes through
// the bounded pool, and epoch's retire path is allocation-free, so its
// steady-state allocs/op is ~0. See scripts/bench_reclaim.sh.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	deque "repro"
	"repro/internal/contbench"
	"repro/internal/hostmeta"
)

// run is one policy's measured numbers.
type run struct {
	Policy      string  `json:"policy"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	RelStddev   float64 `json:"rel_stddev"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Reclamation gauges summed over trials (zero under gc / obsoff).
	NodesRetired   uint64 `json:"nodes_retired"`
	NodesRecycled  uint64 `json:"nodes_recycled"`
	NodesHighWater uint64 `json:"mem_nodes_high_water"`
}

type report struct {
	Generated string        `json:"generated"`
	Host      hostmeta.Host `json:"host"`
	Workload  string        `json:"workload"`
	DurationS float64       `json:"duration_s"`
	Threads   int           `json:"threads"`
	NodeSize  int           `json:"node_size"`
	Trials    int           `json:"trials"`
	Runs      []run         `json:"runs"`
}

func main() {
	var (
		duration = flag.Duration("duration", 1*time.Second, "measured run length per trial")
		trials   = flag.Int("trials", 3, "trials per policy")
		threads  = flag.Int("threads", 4, "worker goroutines")
		prefill  = flag.Int("prefill", 256, "elements inserted before measuring")
		nodeSize = flag.Int("nodesize", 16, "deque node size (small = heavy node churn)")
		// The pool must absorb retire-rate x grace-latency worth of nodes
		// or recycling starves into fresh allocation. Epoch grace latency
		// is scheduling-bound (a worker preempted mid-op blocks the advance
		// for its whole quantum), and releases land a full generation at a
		// time, so on saturated or single-core hosts the pool needs to hold
		// tens of thousands of nodes, not the 32-node default.
		poolNodes = flag.Int("poolnodes", 65536, "recycling pool capacity for the hazard/epoch configs")
		out       = flag.String("out", "BENCH_reclaim.json", "output path")
		// maxAllocs gates CI: exit nonzero when the named policy's
		// allocs/op exceeds the bound (negative disables the gate).
		gatePolicy = flag.String("gate-policy", "", "policy whose allocs/op the -gate-allocs bound applies to (empty disables)")
		gateAllocs = flag.Float64("gate-allocs", 0.01, "allocs/op ceiling for -gate-policy")
	)
	flag.Parse()

	policies := []struct {
		label   string
		reclaim deque.Reclamation
	}{
		{"gc", deque.ReclaimGC},
		{"hazard", deque.ReclaimHazard},
		{"epoch", deque.ReclaimEpoch},
	}

	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Host:      hostmeta.Collect(),
		Workload: fmt.Sprintf(
			"mixed 4-way push/pop on deque.Deque[uint32], node size %d, prefill %d", *nodeSize, *prefill),
		DurationS: duration.Seconds(),
		Threads:   *threads,
		NodeSize:  *nodeSize,
		Trials:    *trials,
	}

	gateFailed := false
	for _, p := range policies {
		res := contbench.RunContention(contbench.ContentionConfig{
			Threads:   *threads,
			Duration:  *duration,
			Trials:    *trials,
			Prefill:   *prefill,
			NodeSize:  *nodeSize,
			Reclaim:   p.reclaim,
			PoolNodes: *poolNodes,
			Seed:      0x9E3779B97F4A7C15,
		})
		r := run{
			Policy:         p.label,
			OpsPerSec:      res.Throughput(),
			RelStddev:      res.Summary.RelStddev(),
			AllocsPerOp:    res.AllocsPerOp,
			BytesPerOp:     res.BytesPerOp,
			NodesRetired:   res.Metrics.NodesRetired,
			NodesRecycled:  res.Metrics.NodesRecycled,
			NodesHighWater: res.Metrics.MemNodesHighWater,
		}
		rep.Runs = append(rep.Runs, r)
		fmt.Fprintf(os.Stderr,
			"  %-7s %14.0f ops/s (±%.1f%%)  %.5f allocs/op  %8.1f B/op  retired=%d recycled=%d hw=%d\n",
			p.label, r.OpsPerSec, 100*r.RelStddev, r.AllocsPerOp, r.BytesPerOp,
			r.NodesRetired, r.NodesRecycled, r.NodesHighWater)
		if *gatePolicy == p.label && *gateAllocs >= 0 && r.AllocsPerOp > *gateAllocs {
			fmt.Fprintf(os.Stderr, "GATE FAIL: %s allocs/op %.5f > %.5f\n",
				p.label, r.AllocsPerOp, *gateAllocs)
			gateFailed = true
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreclaim:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreclaim:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	if gateFailed {
		os.Exit(1)
	}
}
