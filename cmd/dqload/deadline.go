package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hostmeta"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Deadline workload mode (-deadline): drive a schedd scheduler instead
// of a plain dequed pool. Each worker submits jobs with sampled
// deadlines — the job's value IS its deadline, encoded as microseconds
// since run start, so whoever pops it can compute lateness without any
// shared table — mapped to priority bands by slack (tight deadline =
// urgent = low band). Workers alternate submits with PopMin (serving the
// most urgent job, recording its lateness) and every -shed'th pop is a
// PopMax (the overload drop channel). StatusFull on submit is counted as
// a shed job: admission control refused it.
//
// Lateness is measured at the moment the PopMin response arrives:
// now - deadline, clamped at zero (early completions are not negative
// lateness), into its own histogram reported as late_p50/p99/p99.9.

// deadlineResult carries one deadline worker's tallies back to main.
type deadlineResult struct {
	hist     *stats.Histogram // request round-trip latency
	late     *stats.Histogram // job lateness at PopMin completion
	ops      uint64           // requests completed
	admitted uint64           // submits the server accepted
	shedFull uint64           // submits refused with StatusFull
	popMin   uint64           // jobs served from the urgent end
	popMax   uint64           // jobs dropped from the shed end
	empty    uint64           // pops that found the queue empty
	err      error
}

// request kinds per pipeline slot, so responses decode correctly.
const (
	kindSubmit = iota
	kindPopMin
	kindPopMax
)

// runDeadlineWorker drives one connection until stop flips, pipelined
// like runWorker. start anchors the deadline encoding; every worker must
// share it.
func runDeadlineWorker(addr string, tag uint64, bands int, horizon time.Duration, pipeline, shed int, start time.Time, stop *atomic.Bool) deadlineResult {
	res := deadlineResult{hist: stats.NewHistogram(), late: stats.NewHistogram()}
	c, err := wire.Dial(addr)
	if err != nil {
		res.err = err
		return res
	}
	defer func() {
		c.Flush()
		c.Close()
	}()

	rng := rand.New(rand.NewSource(int64(tag)*0x9e3779b9 + 1))
	sent := make([]time.Time, pipeline)
	kinds := make([]int, pipeline)
	val := make([]uint32, 1)
	step := 0 // even = submit, odd = pop
	pops := 0
	for !stop.Load() {
		for i := 0; i < pipeline; i++ {
			req := wire.Request{}
			if step%2 == 0 {
				// Sample a deadline: uniform slack in (0, horizon], band by
				// relative slack — the tighter the deadline, the more urgent.
				slack := time.Duration(1 + rng.Int63n(int64(horizon)))
				band := int(int64(slack) * int64(bands) / (int64(horizon) + 1))
				val[0] = uint32(time.Since(start).Microseconds() + slack.Microseconds())
				req.Op, req.Key, req.Count, req.Values = wire.OpPushPrio, uint64(band), 1, val
				kinds[i] = kindSubmit
			} else {
				pops++
				if shed > 0 && pops%shed == 0 {
					req.Op = wire.OpPopMax
					kinds[i] = kindPopMax
				} else {
					req.Op = wire.OpPopMin
					kinds[i] = kindPopMin
				}
			}
			step++
			sent[i] = time.Now()
			if _, err := c.Send(&req); err != nil {
				res.err = err
				return res
			}
		}
		if err := c.Flush(); err != nil {
			res.err = err
			return res
		}
		for i := 0; i < pipeline; i++ {
			resp, err := c.Recv()
			if err != nil {
				res.err = err
				return res
			}
			res.hist.Record(uint64(time.Since(sent[i])))
			res.ops++
			switch resp.Status {
			case wire.StatusOK:
				switch kinds[i] {
				case kindSubmit:
					res.admitted++
				case kindPopMin:
					res.popMin++
					// The job's value is its deadline in µs since start;
					// lateness is how far past it the urgent end served it.
					late := time.Since(start.Add(time.Duration(resp.Values[0]) * time.Microsecond))
					if late < 0 {
						late = 0
					}
					res.late.Record(uint64(late))
				case kindPopMax:
					res.popMax++
				}
			case wire.StatusFull:
				res.shedFull++ // admission refused: the job was shed at the door
			case wire.StatusEmpty:
				res.empty++
			case wire.StatusContended, wire.StatusCanceled:
				// Backpressure or drain: nothing moved, keep going.
			default:
				res.err = fmt.Errorf("dqload: unexpected status %d", resp.Status)
				return res
			}
		}
	}
	return res
}

// runDeadline is the -deadline entry point: closed-loop deadline workers
// against a schedd server, lateness quantiles, the OpDepq inversion
// snapshot, and (with -check-conserve) a full drain proving count
// conservation: every admitted job was served, dropped, or still queued.
func runDeadline(addr string, conns int, duration time.Duration, bands int, horizon time.Duration, pipeline, shed int, checkConserve, opstats, jsonOut bool) {
	var stop atomic.Bool
	results := make([]deadlineResult, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = runDeadlineWorker(addr, uint64(w), bands, horizon, pipeline, shed, start, &stop)
		}(w)
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	rtt := stats.NewHistogram()
	late := stats.NewHistogram()
	var total deadlineResult
	for i := range results {
		r := &results[i]
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "dqload: worker %d: %v\n", i, r.err)
			os.Exit(1)
		}
		rtt.Merge(r.hist)
		late.Merge(r.late)
		total.ops += r.ops
		total.admitted += r.admitted
		total.shedFull += r.shedFull
		total.popMin += r.popMin
		total.popMax += r.popMax
		total.empty += r.empty
	}

	// Post-run accounting on a fresh connection: the observed-inversion
	// snapshot, and (optionally) a drain that closes the conservation
	// ledger — admitted = served + dropped + drained, exactly.
	c, err := wire.Dial(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dqload: post-run dial:", err)
		os.Exit(1)
	}
	defer c.Close()
	var drained uint64
	if checkConserve {
		for {
			_, _, ok, err := c.PopMin()
			if err != nil {
				fmt.Fprintln(os.Stderr, "dqload: drain:", err)
				os.Exit(1)
			}
			if !ok {
				break
			}
			drained++
		}
		if got := total.popMin + total.popMax + drained; got != total.admitted {
			fmt.Fprintf(os.Stderr, "dqload: CONSERVATION VIOLATION: admitted %d != served %d + dropped %d + drained %d\n",
				total.admitted, total.popMin, total.popMax, drained)
			os.Exit(1)
		}
	}
	ds, err := c.Depq()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dqload: depq snapshot:", err)
		os.Exit(1)
	}
	var srvStats []wire.OpStat
	if opstats {
		srvStats, err = c.Stats()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dqload: op-stats snapshot:", err)
			os.Exit(1)
		}
	}

	secs := elapsed.Seconds()
	if jsonOut {
		out := map[string]any{
			"addr":         addr,
			"mode":         "deadline",
			"conns":        conns,
			"pipeline":     pipeline,
			"bands":        bands,
			"horizon_ns":   horizon.Nanoseconds(),
			"elapsed_sec":  secs,
			"ops":          total.ops,
			"ops_per_sec":  float64(total.ops) / secs,
			"admitted":     total.admitted,
			"shed_full":    total.shedFull,
			"pop_min":      total.popMin,
			"pop_max":      total.popMax,
			"empty":        total.empty,
			"p50_ns":       rtt.Quantile(0.50),
			"p90_ns":       rtt.Quantile(0.90),
			"p99_ns":       rtt.Quantile(0.99),
			"p999_ns":      rtt.Quantile(0.999),
			"late_p50_ns":  late.Quantile(0.50),
			"late_p99_ns":  late.Quantile(0.99),
			"late_p999_ns": late.Quantile(0.999),
			"late_mean_ns": late.Mean(),
			"late_max_ns":  late.Max(),
			"inv_max":      ds.InvMax,
			"band_bound":   ds.BandBound,
			"inv_mean":     float64(ds.MeanMilli) / 1000,
			"host":         hostmeta.Collect(),
		}
		if checkConserve {
			out["drained"] = drained
			out["conserved"] = true
		}
		if opstats {
			out["op_stats"] = srvStats
		}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "dqload:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("dqload: deadline mode, %d conns x %.1fs, bands=%d horizon=%s pipeline=%d\n",
		conns, secs, bands, horizon, pipeline)
	fmt.Printf("  %d requests (%.0f/s): admitted=%d shed(full)=%d served(min)=%d dropped(max)=%d empty=%d\n",
		total.ops, float64(total.ops)/secs, total.admitted, total.shedFull,
		total.popMin, total.popMax, total.empty)
	fmt.Printf("  rtt     %s\n", rtt.String())
	fmt.Printf("  lateness p50=%s p99=%s p99.9=%s mean=%s max=%s\n",
		time.Duration(late.Quantile(0.50)), time.Duration(late.Quantile(0.99)),
		time.Duration(late.Quantile(0.999)), time.Duration(int64(late.Mean())),
		time.Duration(late.Max()))
	fmt.Printf("  inversion max=%d mean=%.3f (bound %d, %d bands)\n",
		ds.InvMax, float64(ds.MeanMilli)/1000, ds.BandBound, ds.Bands)
	if checkConserve {
		fmt.Printf("  conserved: admitted %d = served %d + dropped %d + drained %d\n",
			total.admitted, total.popMin, total.popMax, drained)
	}
	if opstats {
		for _, st := range srvStats {
			fmt.Printf("  server %-11s n=%-8d p50=%s p90=%s p99=%s p99.9=%s max=%s\n",
				st.Class, st.Count,
				time.Duration(st.P50Ns), time.Duration(st.P90Ns),
				time.Duration(st.P99Ns), time.Duration(st.P999Ns), time.Duration(st.MaxNs))
		}
	}
}
