// Command dqload is a closed-loop load generator for dequed: N
// connections, each alternating pushes and pops (optionally batched,
// optionally pipelined), measuring throughput and request latency
// quantiles from per-worker histograms.
//
// Closed loop means each connection keeps a fixed number of requests in
// flight (-pipeline) and issues the next only after a response arrives,
// so reported latency is real round-trip service time, not queue time in
// the generator.
//
// Example:
//
//	dqload -addr localhost:7411 -conns 8 -duration 5s -batch 16 -pipeline 4
//	dqload -addr localhost:7411 -json        # machine-readable summary
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	dq "repro"
	"repro/internal/hostmeta"
	"repro/internal/stats"
	"repro/internal/wire"
)

// workerResult carries one connection's tallies back to main.
type workerResult struct {
	hist   *stats.Histogram
	ops    uint64 // requests completed
	values uint64 // values moved (pushed + popped)
	full   uint64 // StatusFull responses (backpressure)
	empty  uint64 // StatusEmpty responses
	err    error
}

func main() {
	var (
		addr     = flag.String("addr", "localhost:7411", "dequed server address")
		conns    = flag.Int("conns", 4, "concurrent connections (closed-loop workers)")
		duration = flag.Duration("duration", 3*time.Second, "measurement window")
		batch    = flag.Int("batch", 1, "values per push/pop request (1 = single-value ops)")
		pipeline = flag.Int("pipeline", 1, "requests in flight per connection")
		route    = flag.String("route", "key", "key discipline matching the server's routing: key (per-worker keys), rr or least (key 0)")
		relax    = flag.Bool("relax", false, "query the server's observed-relaxation snapshot (OpRelax) after the run")
		opstats  = flag.Bool("stats", false, "query the server's per-op-class latency snapshot (OpStats) after the run")
		jsonOut  = flag.Bool("json", false, "emit a JSON summary instead of text")

		deadline = flag.Bool("deadline", false, "deadline workload against a schedd scheduler: OpPushPrio submits with sampled deadlines, OpPopMin serves, lateness quantiles reported")
		bands    = flag.Int("bands", 8, "with -deadline: priority bands to spread submissions over (match the server's -bands)")
		horizon  = flag.Duration("horizon", 50*time.Millisecond, "with -deadline: deadlines are sampled uniformly in (now, now+horizon]")
		shed     = flag.Int("shed", 4, "with -deadline: every shed'th pop is an OpPopMax drop (0 = never shed from the client)")
		conserve = flag.Bool("check-conserve", false, "with -deadline: drain the queue after the run and verify admitted = served + dropped + drained")
	)
	flag.Parse()
	if *conns <= 0 || *batch <= 0 || *batch > wire.MaxBatch || *pipeline <= 0 {
		fmt.Fprintln(os.Stderr, "dqload: conns, batch, and pipeline must be positive (batch <= MaxBatch)")
		os.Exit(2)
	}
	if *deadline {
		if *bands <= 0 || *horizon <= 0 || *shed < 0 {
			fmt.Fprintln(os.Stderr, "dqload: -deadline needs bands > 0, horizon > 0, shed >= 0")
			os.Exit(2)
		}
		if *batch != 1 {
			fmt.Fprintln(os.Stderr, "dqload: -deadline submits are single-value; -batch must be 1")
			os.Exit(2)
		}
		runDeadline(*addr, *conns, *duration, *bands, *horizon, *pipeline, *shed, *conserve, *opstats, *jsonOut)
		return
	}
	policy, err := dq.ParseRouting(*route)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dqload:", err)
		os.Exit(2)
	}
	// Under key-affinity routing each worker pins its own shard, so give
	// every worker a distinct key; the other policies ignore the key (as
	// does a -relaxed server), so key 0 keeps the value tags stable.
	perWorkerKeys := policy == dq.RouteKeyAffinity

	var stop atomic.Bool
	results := make([]workerResult, *conns)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := uint64(0)
			if perWorkerKeys {
				key = uint64(w)
			}
			results[w] = runWorker(*addr, uint64(w), key, *batch, *pipeline, &stop)
		}(w)
	}
	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	merged := stats.NewHistogram()
	var total workerResult
	total.hist = merged
	for i := range results {
		r := &results[i]
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "dqload: worker %d: %v\n", i, r.err)
			os.Exit(1)
		}
		merged.Merge(r.hist)
		total.ops += r.ops
		total.values += r.values
		total.full += r.full
		total.empty += r.empty
	}

	// Observed-relaxation snapshot, queried once on a fresh connection
	// after the workers are done so it covers the whole run.
	var rs wire.RelaxStats
	if *relax {
		c, err := wire.Dial(*addr)
		if err == nil {
			rs, err = c.Relax()
			c.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dqload: relax snapshot:", err)
			os.Exit(1)
		}
	}

	// Server-side latency histograms, same post-run fresh connection.
	var srvStats []wire.OpStat
	if *opstats {
		c, err := wire.Dial(*addr)
		if err == nil {
			srvStats, err = c.Stats()
			c.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dqload: op-stats snapshot:", err)
			os.Exit(1)
		}
	}

	secs := elapsed.Seconds()
	if *jsonOut {
		out := map[string]any{
			"addr":           *addr,
			"conns":          *conns,
			"batch":          *batch,
			"pipeline":       *pipeline,
			"elapsed_sec":    secs,
			"ops":            total.ops,
			"values":         total.values,
			"ops_per_sec":    float64(total.ops) / secs,
			"values_per_sec": float64(total.values) / secs,
			"full":           total.full,
			"empty":          total.empty,
			"p50_ns":         merged.Quantile(0.50),
			"p90_ns":         merged.Quantile(0.90),
			"p99_ns":         merged.Quantile(0.99),
			"p999_ns":        merged.Quantile(0.999),
			"mean_ns":        merged.Mean(),
			"max_ns":         merged.Max(),
			"host":           hostmeta.Collect(),
		}
		if *relax {
			out["rank_error_max"] = rs.RankMax
			out["rank_bound"] = rs.RankBound
			out["rank_error_mean"] = float64(rs.MeanMilli) / 1000
			out["relax_d"] = rs.Sample
			out["relax_shards"] = rs.Shards
		}
		if *opstats {
			out["op_stats"] = srvStats
		}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "dqload:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("dqload: %d conns x %.1fs, batch=%d pipeline=%d\n", *conns, secs, *batch, *pipeline)
	fmt.Printf("  %d requests (%.0f/s), %d values (%.0f/s), full=%d empty=%d\n",
		total.ops, float64(total.ops)/secs, total.values, float64(total.values)/secs,
		total.full, total.empty)
	fmt.Printf("  latency %s\n", merged.String())
	if *relax {
		fmt.Printf("  relaxation d=%d shards=%d: rank error max=%d mean=%.3f (bound %d)\n",
			rs.Sample, rs.Shards, rs.RankMax, float64(rs.MeanMilli)/1000, rs.RankBound)
	}
	if *opstats {
		if len(srvStats) == 0 {
			fmt.Println("  server op latency: no samples (obsoff build or idle server)")
		}
		for _, st := range srvStats {
			fmt.Printf("  server %-11s n=%-8d p50=%s p90=%s p99=%s p99.9=%s max=%s\n",
				st.Class, st.Count,
				time.Duration(st.P50Ns), time.Duration(st.P90Ns),
				time.Duration(st.P99Ns), time.Duration(st.P999Ns), time.Duration(st.MaxNs))
		}
	}
}

// runWorker drives one connection until stop flips: a window of pipeline
// requests is sent, flushed, and received, alternating pushes (left) and
// pops (right) — the pool behaves as a distributed FIFO, so sustained
// load neither drains nor grows it without bound. tag marks this
// worker's values; key is the routing key (0 unless -route key).
func runWorker(addr string, tag, key uint64, batch, pipeline int, stop *atomic.Bool) workerResult {
	res := workerResult{hist: stats.NewHistogram()}
	c, err := wire.Dial(addr)
	if err != nil {
		res.err = err
		return res
	}
	defer func() {
		c.Flush()
		c.Close()
	}()

	vs := make([]uint32, batch)
	for i := range vs {
		vs[i] = uint32(tag)<<16 | uint32(i)
	}
	sent := make([]time.Time, pipeline)
	push := true
	for !stop.Load() {
		n := pipeline
		for i := 0; i < n; i++ {
			req := wire.Request{Key: key}
			if push {
				if batch == 1 {
					req.Op, req.Side, req.Count, req.Values = wire.OpPush, wire.Left, 1, vs[:1]
				} else {
					req.Op, req.Side, req.Count, req.Values = wire.OpPushN, wire.Left, uint32(batch), vs
				}
			} else {
				if batch == 1 {
					req.Op, req.Side = wire.OpPop, wire.Right
				} else {
					req.Op, req.Side, req.Count = wire.OpPopN, wire.Right, uint32(batch)
				}
			}
			push = !push
			sent[i] = time.Now()
			if _, err := c.Send(&req); err != nil {
				res.err = err
				return res
			}
		}
		if err := c.Flush(); err != nil {
			res.err = err
			return res
		}
		for i := 0; i < n; i++ {
			resp, err := c.Recv()
			if err != nil {
				res.err = err
				return res
			}
			res.hist.Record(uint64(time.Since(sent[i])))
			res.ops++
			switch resp.Status {
			case wire.StatusOK:
				res.values += uint64(resp.Count)
			case wire.StatusFull:
				res.full++
				res.values += uint64(resp.Count) // accepted prefix still landed
			case wire.StatusEmpty:
				res.empty++
			case wire.StatusContended, wire.StatusCanceled:
				// Backpressure or drain: nothing moved, keep going.
			default:
				res.err = fmt.Errorf("dqload: unexpected status %d", resp.Status)
				return res
			}
		}
	}
	return res
}
