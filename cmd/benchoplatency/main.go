// Command benchoplatency characterizes the per-op-class latency
// distributions the observability layer records (E9): a mixed
// single/batch workload over a stealing pool, run with full sampling so
// every class the workload exercises — core push/pop by side, batch ops,
// pool routing, steal sweeps — yields a dense histogram, written as
// BENCH_oplatency.json with host metadata.
//
// This is a characterization run, not a gate: the numbers describe where
// each layer's tail sits (and how far the pool's routing+steal envelope
// is above the raw shard op). The cost gate for the recording itself is
// scripts/oplatency_overhead.sh.
//
// Example:
//
//	go run ./cmd/benchoplatency -duration 2s -threads 4 -shards 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	dq "repro"
	"repro/internal/hostmeta"
	"repro/internal/xrand"
)

// output is the BENCH_oplatency.json document.
type output struct {
	Generated string               `json:"generated"`
	Host      hostmeta.Host        `json:"host"`
	Workload  string               `json:"workload"`
	DurationS float64              `json:"duration_s"`
	Threads   int                  `json:"threads"`
	Shards    int                  `json:"shards"`
	Sample    int                  `json:"lat_sample"`
	BatchLen  int                  `json:"batch_len"`
	Ops       uint64               `json:"ops"`
	OpsPerSec float64              `json:"ops_per_sec"`
	Enabled   bool                 `json:"obs_enabled"`
	OpStats   []dq.LatClassSummary `json:"op_stats"`
}

func main() {
	var (
		duration = flag.Duration("duration", 2*time.Second, "measured run length")
		threads  = flag.Int("threads", 4, "workload goroutines")
		shards   = flag.Int("shards", 4, "pool shards")
		batch    = flag.Int("batch", 8, "batch length for the occasional PushLeftN/PopRightN")
		sample   = flag.Int("sample", 1, "latency sampling interval (1 = record every op: this is a characterization run, not a cost measurement)")
		out      = flag.String("out", "BENCH_oplatency.json", "output path")
	)
	flag.Parse()
	if *threads <= 0 || *shards <= 0 || *batch <= 0 || *sample <= 0 {
		fmt.Fprintln(os.Stderr, "benchoplatency: threads, shards, batch, and sample must be positive")
		os.Exit(2)
	}

	p := dq.NewPool[uint32](*shards, dq.WithShardOptions(
		dq.WithMaxThreads(*threads+1),
		dq.WithLatencySample(*sample),
	))

	var stop atomic.Bool
	var ops atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := p.Register()
			rng := xrand.NewXoshiro256(uint64(w)*0x9E3779B9 + 1)
			buf := make([]uint32, *batch)
			var n uint64
			for !stop.Load() {
				n++
				v := uint32(n)
				// 1-in-32 iterations run a batch op so batch_push/batch_pop
				// accumulate samples without dominating the single-op mix;
				// the rest split evenly across the four single-op classes.
				// Pops on a drained home shard exercise the steal sweep.
				if n%32 == 0 {
					if rng.Intn(2) == 0 {
						for i := range buf {
							buf[i] = v
						}
						h.PushLeftN(0, buf)
					} else {
						h.PopRightN(0, buf)
					}
					continue
				}
				switch rng.Intn(4) {
				case 0:
					h.PushLeft(0, v)
				case 1:
					h.PushRight(0, v)
				case 2:
					h.PopLeft(0)
				case 3:
					h.PopRight(0)
				}
			}
			ops.Add(n)
		}(w)
	}
	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	doc := output{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Host:      hostmeta.Collect(),
		Workload:  "pool mixed 4-way single ops + 1/32 batch, rr routing, stealing on",
		DurationS: elapsed.Seconds(),
		Threads:   *threads,
		Shards:    *shards,
		Sample:    *sample,
		BatchLen:  *batch,
		Ops:       ops.Load(),
		OpsPerSec: float64(ops.Load()) / elapsed.Seconds(),
		Enabled:   dq.MetricsEnabled,
		OpStats:   p.LatencySnapshot().Summaries(),
	}

	for _, s := range doc.OpStats {
		fmt.Fprintf(os.Stderr, "  %-11s n=%-9d mean=%-10s p50=%-10s p90=%-10s p99=%-10s p99.9=%-10s max=%s\n",
			s.Class, s.Count, time.Duration(s.MeanNs).Round(time.Nanosecond),
			time.Duration(s.P50Ns), time.Duration(s.P90Ns),
			time.Duration(s.P99Ns), time.Duration(s.P999Ns), time.Duration(s.MaxNs))
	}
	if !dq.MetricsEnabled {
		fmt.Fprintln(os.Stderr, "  (obsoff build: no latency recorded)")
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchoplatency:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchoplatency:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchoplatency:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchoplatency: %d ops (%.0f/s) over %.1fs -> %s\n",
		doc.Ops, doc.OpsPerSec, doc.DurationS, *out)
}
