// Command benchcontention measures the hot-path contention benchmarks and
// writes BENCH_contention.json: the mixed 4-way push/pop workload on the
// generic Deque[uint32] across a goroutine sweep, in "current" mode (the
// optimized hot path) and "legacy" mode (per-handle slab caching and edge
// caching disabled), plus batch-API runs. See scripts/bench_contention.sh.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/contbench"
	"repro/internal/hostmeta"
	"repro/internal/obs"
)

// run is one sweep's numbers, keyed by goroutine count.
type run struct {
	Label       string             `json:"label"`
	Mode        string             `json:"mode"`
	Batch       int                `json:"batch,omitempty"`
	OpsPerSec   map[string]float64 `json:"ops_per_sec"`
	RelStddev   map[string]float64 `json:"rel_stddev"`
	AllocsPerOp map[string]float64 `json:"allocs_per_op"`
	BytesPerOp  map[string]float64 `json:"bytes_per_op"`
	TrialsUsed  int                `json:"trials"`
	// Metrics/Derived report the observability layer's transition mix per
	// goroutine count (summed over trials); present only with -metrics.
	Metrics map[string]obs.Metrics `json:"metrics,omitempty"`
	Derived map[string]obs.Derived `json:"derived,omitempty"`
}

type report struct {
	Generated string             `json:"generated"`
	Host      hostmeta.Host      `json:"host"`
	Workload  string             `json:"workload"`
	DurationS float64            `json:"duration_s"`
	Threads   []int              `json:"threads"`
	Baseline  run                `json:"baseline"`
	Current   run                `json:"current"`
	Batches   []run              `json:"batch_runs,omitempty"`
	Speedup   map[string]float64 `json:"speedup_current_over_baseline"`
}

func main() {
	var (
		duration     = flag.Duration("duration", 500*time.Millisecond, "measured run length per trial")
		trials       = flag.Int("trials", 3, "trials per configuration")
		threadsFlag  = flag.String("threads", "1,4,16", "comma-separated goroutine counts")
		prefill      = flag.Int("prefill", 1024, "elements inserted before measuring")
		batchesFlag  = flag.String("batches", "8", "comma-separated batch sizes for batch-API runs (empty to skip)")
		out          = flag.String("out", "BENCH_contention.json", "output path")
		baselineFile = flag.String("baseline-file", "", "JSON file with a measured pre-PR baseline run to embed instead of the in-binary legacy mode")
		baselineOnly = flag.Bool("baseline-only", false, "measure only the current tree's single-op sweep and write it as a baseline run file")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile of the sweeps to this file")
		metricsFlag  = flag.Bool("metrics", false, "record the transition mix (observability counters) per sweep point")
		helpingFlag  = flag.Bool("helping", false, "enable the announcement/helping layer on the deques under test (A/B its overhead)")
		latSample    = flag.Int("latsample", 0, "latency-histogram sampling interval (0 = library default, negative = disabled; A/B via scripts/oplatency_overhead.sh)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("create -cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("start profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	threads, err := parseInts(*threadsFlag)
	if err != nil {
		fatalf("bad -threads: %v", err)
	}
	batches, err := parseInts(*batchesFlag)
	if err != nil {
		fatalf("bad -batches: %v", err)
	}

	sweep := func(mode contbench.ContentionMode, batch int, label string) run {
		r := run{
			Label:       label,
			Mode:        string(mode),
			Batch:       batch,
			OpsPerSec:   map[string]float64{},
			RelStddev:   map[string]float64{},
			AllocsPerOp: map[string]float64{},
			BytesPerOp:  map[string]float64{},
			TrialsUsed:  *trials,
		}
		for _, t := range threads {
			res := contbench.RunContention(contbench.ContentionConfig{
				Threads:   t,
				Duration:  *duration,
				Trials:    *trials,
				Prefill:   *prefill,
				Batch:     batch,
				Mode:      mode,
				Seed:      0x9E3779B97F4A7C15,
				Helping:   *helpingFlag,
				LatSample: *latSample,
			})
			key := strconv.Itoa(t)
			r.OpsPerSec[key] = res.Throughput()
			r.RelStddev[key] = res.Summary.RelStddev()
			r.AllocsPerOp[key] = res.AllocsPerOp
			r.BytesPerOp[key] = res.BytesPerOp
			fmt.Fprintf(os.Stderr, "  %-24s t=%-3d %14.0f ops/s (±%.1f%%)  %.4f allocs/op  %.1f B/op\n",
				label, t, res.Throughput(), 100*res.Summary.RelStddev(),
				res.AllocsPerOp, res.BytesPerOp)
			if *metricsFlag {
				if r.Metrics == nil {
					r.Metrics = map[string]obs.Metrics{}
					r.Derived = map[string]obs.Derived{}
				}
				d := res.Metrics.Derive()
				r.Metrics[key] = res.Metrics
				r.Derived[key] = d
				fmt.Fprintf(os.Stderr, "  %-24s t=%-3d straddle=%.4f casfail=%.4f hops/op=%.4f cachehit=%.4f\n",
					"", t, d.StraddleRatio, d.CASFailureRatio, d.MeanOracleHops, d.EdgeCacheHitRate)
			}
		}
		return r
	}

	if *baselineOnly {
		r := sweep(contbench.ModeCurrent, 0, "measured baseline")
		writeJSON(*out, r)
		fmt.Fprintf(os.Stderr, "wrote baseline run to %s\n", *out)
		return
	}

	var baseline run
	if *baselineFile != "" {
		data, err := os.ReadFile(*baselineFile)
		if err != nil {
			fatalf("read -baseline-file: %v", err)
		}
		if err := json.Unmarshal(data, &baseline); err != nil {
			fatalf("parse -baseline-file: %v", err)
		}
		fmt.Fprintf(os.Stderr, "embedding measured baseline %q\n", baseline.Label)
	} else {
		fmt.Fprintln(os.Stderr, "== baseline (legacy mode: per-handle caches disabled) ==")
		baseline = sweep(contbench.ModeLegacy, 0, "legacy (in-binary approx)")
	}

	fmt.Fprintln(os.Stderr, "== current (optimized hot path) ==")
	current := sweep(contbench.ModeCurrent, 0, "current")

	var batchRuns []run
	for _, b := range batches {
		if b <= 1 {
			continue
		}
		fmt.Fprintf(os.Stderr, "== current, batch=%d ==\n", b)
		batchRuns = append(batchRuns, sweep(contbench.ModeCurrent, b, fmt.Sprintf("current batch=%d", b)))
	}

	speedup := map[string]float64{}
	for _, t := range threads {
		key := strconv.Itoa(t)
		if base := baseline.OpsPerSec[key]; base > 0 {
			speedup[key] = current.OpsPerSec[key] / base
		}
	}

	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Host:      hostmeta.Collect(),
		Workload:  fmt.Sprintf("mixed 4-way push/pop on deque.Deque[uint32], prefill %d", *prefill),
		DurationS: duration.Seconds(),
		Threads:   threads,
		Baseline:  baseline,
		Current:   current,
		Batches:   batchRuns,
		Speedup:   speedup,
	}
	writeJSON(*out, rep)
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	for _, t := range threads {
		key := strconv.Itoa(t)
		if s, ok := speedup[key]; ok {
			fmt.Fprintf(os.Stderr, "  speedup t=%-3s %.2fx\n", key, s)
		} else {
			fmt.Fprintf(os.Stderr, "  speedup t=%-3s n/a (no baseline point)\n", key)
		}
	}
}

func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
