// Command stress runs long-duration validation campaigns against any
// structure in the registry: conservation stress (no lost, duplicated, or
// invented values) and linearizability checking of many small recorded
// histories.
//
// Examples:
//
//	stress -structure of -mode conservation -workers 8 -duration 10s
//	stress -structure of-elim -mode lincheck -histories 5000
//	stress -mode cancel -workers 8 -duration 10s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	dq "repro"
	"repro/internal/bench"
	"repro/internal/lincheck"
	"repro/internal/obs"
	"repro/internal/xrand"
)

// metricsFlag gates the end-of-run transition-mix report; printMetrics
// renders it for any structure wired into the observability layer.
var metricsFlag *bool

func printMetrics(m obs.Metrics) {
	d := m.Derive()
	fmt.Printf("metrics: ops=%d pushes=%d pops=%d empty=%d\n",
		m.Ops(), m.Pushes(), m.Pops(), m.EmptyPops())
	fmt.Printf("metrics: L=%v failL=%v E=%v\n", m.Transitions, m.TransitionFails, m.Empties)
	fmt.Printf("metrics: straddle=%.4f seal=%.6f casfail=%.4f hops/op=%.4f elim=%.4f cachehit=%.4f\n",
		d.StraddleRatio, d.SealRate, d.CASFailureRatio, d.MeanOracleHops, d.ElimRate, d.EdgeCacheHitRate)
	fmt.Printf("metrics: handles=%d nodes: alloc=%d freed=%d live=%d\n",
		m.Handles, m.NodesAllocated, m.NodesFreed, m.NodesLive)
}

func main() {
	var (
		structure = flag.String("structure", "of", "structure under test (see benchdeque -list)")
		mode      = flag.String("mode", "conservation", "conservation, lincheck, or cancel")
		workers   = flag.Int("workers", 8, "concurrent workers")
		duration  = flag.Duration("duration", 5*time.Second, "conservation: run length")
		histories = flag.Int("histories", 2000, "lincheck: number of small histories")
		opsPer    = flag.Int("ops", 5, "lincheck: ops per worker per history")
		seed      = flag.Uint64("seed", uint64(time.Now().UnixNano()), "RNG seed")
	)
	metricsFlag = flag.Bool("metrics", false,
		"after the run, print the observability layer's transition mix (of* structures and cancel mode)")
	flag.Parse()

	if *mode == "cancel" {
		// Cancellation stress runs against the deque's own Ctx/Try API, not
		// the registry's common Session interface.
		if cancelStress(*workers, *duration, *seed) {
			fmt.Println("cancel: PASS")
			return
		}
		fmt.Println("cancel: FAIL")
		os.Exit(1)
	}

	factory, err := bench.Lookup(*structure)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch *mode {
	case "conservation":
		if conservation(factory, *workers, *duration, *seed) {
			fmt.Println("conservation: PASS")
			return
		}
		fmt.Println("conservation: FAIL")
		os.Exit(1)
	case "lincheck":
		if linearizability(factory, *workers, *histories, *opsPer, *seed) {
			fmt.Println("lincheck: PASS")
			return
		}
		fmt.Println("lincheck: FAIL")
		os.Exit(1)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// conservation hammers the structure and verifies every value pushed is
// popped at most once and only after being pushed. Residue is checked by
// draining at the end.
func conservation(factory bench.Factory, workers int, d time.Duration, seed uint64) bool {
	inst := factory(workers + 1)
	var stop atomic.Bool
	var wg sync.WaitGroup
	states := make([]conservationState, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Label the worker for pprof, so CPU profiles slice by role.
			obs.Do("conservation", w, func() { conservationWorker(inst, w, seed, &stop, &states[w]) })
		}(w)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()

	// Drain the residue.
	s := inst.Session()
	var residue int
	for {
		if _, ok := s.PopLeft(); !ok {
			break
		}
		residue++
	}
	seen := make(map[uint32]bool)
	totalPushed, totalPopped := uint64(0), 0
	for w := range states {
		totalPushed += states[w].pushed
		for _, v := range states[w].popped {
			if seen[v] {
				fmt.Printf("value %#x popped twice\n", v)
				return false
			}
			seen[v] = true
			totalPopped++
		}
	}
	fmt.Printf("pushed=%d popped=%d residue=%d\n", totalPushed, totalPopped, residue)
	if *metricsFlag {
		if mp, ok := inst.(bench.MetricsProvider); ok {
			printMetrics(mp.Metrics())
		} else {
			fmt.Println("metrics: structure does not export observability metrics")
		}
	}
	return uint64(totalPopped)+uint64(residue) == totalPushed
}

// conservationState accumulates one conservation worker's observations.
type conservationState struct {
	pushed uint64
	popped []uint32
}

// conservationWorker is one conservation-stress worker's loop.
func conservationWorker(inst bench.Instance, w int, seed uint64, stop *atomic.Bool, st *conservationState) {
	s := inst.Session()
	rng := xrand.NewXoshiro256(seed + uint64(w)*977)
	var i uint32
	for !stop.Load() {
		id := uint32(w)<<24 | (i & 0x00FFFFFF)
		switch rng.Intn(4) {
		case 0:
			s.PushLeft(id)
			st.pushed++
			i++
		case 1:
			s.PushRight(id)
			st.pushed++
			i++
		case 2:
			if v, ok := s.PopLeft(); ok {
				st.popped = append(st.popped, v)
			}
		case 3:
			if v, ok := s.PopRight(); ok {
				st.popped = append(st.popped, v)
			}
		}
	}
}

// cancelStress hammers the cancellable (*Ctx) and bounded (Try*) operation
// variants with aggressive deadlines and tiny attempt budgets, and verifies
// that abort semantics are exact under real contention: an operation that
// returned a context error or ErrContended had no effect, so conservation
// holds when only nil-error pushes are counted and every popped value must
// come from that set.
func cancelStress(workers int, d time.Duration, seed uint64) bool {
	deq := dq.NewUint32(dq.WithNodeSize(8), dq.WithMaxThreads(workers+1))
	var stop atomic.Bool
	var wg sync.WaitGroup
	type wstate struct {
		pushedOK []uint32
		popped   []uint32
		aborts   uint64
	}
	states := make([]wstate, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := deq.Register()
			rng := xrand.NewXoshiro256(seed + uint64(w)*977)
			var i uint32
			st := &states[w]
			note := func(err error) bool {
				if err == nil {
					return true
				}
				if errors.Is(err, context.DeadlineExceeded) ||
					errors.Is(err, context.Canceled) ||
					errors.Is(err, dq.ErrContended) {
					st.aborts++
					return false
				}
				fmt.Printf("worker %d: unexpected error %v\n", w, err)
				stop.Store(true)
				return false
			}
			for !stop.Load() {
				// Every push attempt gets a fresh ID whether or not it lands:
				// a cancelled push whose value later surfaces is then caught
				// as "popped but never pushed".
				id := uint32(w)<<24 | (i & 0x00FFFFFF)
				i++
				ctx, cancel := context.WithTimeout(context.Background(),
					time.Duration(rng.Intn(40))*time.Microsecond)
				attempts := 1 + rng.Intn(3)
				switch rng.Intn(8) {
				case 0:
					if note(h.PushLeftCtx(ctx, id)) {
						st.pushedOK = append(st.pushedOK, id)
					}
				case 1:
					if note(h.PushRightCtx(ctx, id)) {
						st.pushedOK = append(st.pushedOK, id)
					}
				case 2:
					if note(h.TryPushLeft(id, attempts)) {
						st.pushedOK = append(st.pushedOK, id)
					}
				case 3:
					if note(h.TryPushRight(id, attempts)) {
						st.pushedOK = append(st.pushedOK, id)
					}
				case 4:
					if v, ok, err := h.PopLeftCtx(ctx); note(err) && ok {
						st.popped = append(st.popped, v)
					}
				case 5:
					if v, ok, err := h.PopRightCtx(ctx); note(err) && ok {
						st.popped = append(st.popped, v)
					}
				case 6:
					if v, ok, err := h.TryPopLeft(attempts); note(err) && ok {
						st.popped = append(st.popped, v)
					}
				case 7:
					if v, ok, err := h.TryPopRight(attempts); note(err) && ok {
						st.popped = append(st.popped, v)
					}
				}
				cancel()
			}
		}(w)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()

	// Drain the residue, then check exactness: popped ∪ residue must equal
	// the nil-error pushes, with no duplicates and no inventions.
	h := deq.Register()
	residue := []uint32{}
	for {
		v, ok := h.PopLeft()
		if !ok {
			break
		}
		residue = append(residue, v)
	}
	pushedOK := make(map[uint32]bool)
	totalPushed, totalAborts := 0, uint64(0)
	for w := range states {
		totalAborts += states[w].aborts
		for _, v := range states[w].pushedOK {
			if pushedOK[v] {
				fmt.Printf("value %#x pushed-ok twice\n", v)
				return false
			}
			pushedOK[v] = true
			totalPushed++
		}
	}
	totalPopped := 0
	recover := func(v uint32) bool {
		if !pushedOK[v] {
			fmt.Printf("value %#x popped but its push was aborted (or never ran)\n", v)
			return false
		}
		delete(pushedOK, v)
		totalPopped++
		return true
	}
	for w := range states {
		for _, v := range states[w].popped {
			if !recover(v) {
				return false
			}
		}
	}
	for _, v := range residue {
		if !recover(v) {
			return false
		}
	}
	fmt.Printf("pushed-ok=%d popped=%d residue=%d aborts=%d\n",
		totalPushed, totalPopped-len(residue), len(residue), totalAborts)
	if *metricsFlag {
		printMetrics(deq.Metrics())
	}
	if len(pushedOK) != 0 {
		fmt.Printf("%d successfully pushed values lost\n", len(pushedOK))
		return false
	}
	return true
}

// linearizability records many small histories and checks each.
func linearizability(factory bench.Factory, workers, histories, opsPer int, seed uint64) bool {
	if workers*opsPer*2 > lincheck.MaxOps {
		fmt.Printf("capping: %d workers x %d ops exceeds checkable history size\n", workers, opsPer)
		workers = 3
	}
	for trial := 0; trial < histories; trial++ {
		inst := factory(workers + 1)
		rec := lincheck.NewRecorder()
		logs := make([]*lincheck.WorkerLog, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			logs[w] = rec.Worker()
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s := inst.Session()
				l := logs[w]
				rng := xrand.NewXoshiro256(seed + uint64(trial)*131 + uint64(w))
				for i := 0; i < opsPer; i++ {
					v := uint32(trial&0xFFFF)<<12 | uint32(w)<<8 | uint32(i)
					switch rng.Intn(4) {
					case 0:
						l.Push(lincheck.PushLeft, v, func() { s.PushLeft(v) })
					case 1:
						l.Push(lincheck.PushRight, v, func() { s.PushRight(v) })
					case 2:
						l.Pop(lincheck.PopLeft, s.PopLeft)
					case 3:
						l.Pop(lincheck.PopRight, s.PopRight)
					}
				}
			}(w)
		}
		wg.Wait()
		h := lincheck.Merge(logs...)
		if !lincheck.Check(h) {
			fmt.Printf("history %d NOT linearizable:\n", trial)
			for _, op := range h {
				fmt.Printf("  %v\n", op)
			}
			return false
		}
		if trial%500 == 499 {
			fmt.Printf("checked %d histories\n", trial+1)
		}
	}
	return true
}
