//go:build !chaos

// The latency A/B harness drives the deque through internal/chaos
// forced-failure storms, which only exist under `-tags chaos`. The default
// build gets this stub so `go build ./...` stays green.
package main

import (
	"fmt"
	"os"
)

func main() {
	fmt.Fprintln(os.Stderr,
		"benchlatency requires the chaos build: go run -tags chaos ./cmd/benchlatency (see scripts/latency.sh)")
	os.Exit(1)
}
