//go:build chaos

// Command benchlatency measures per-operation latency percentiles under an
// adversarial forced-failure storm, A/B-ing the helping layer: the same
// chaos schedule (FailProb on every transition point) runs with helping off
// and with helping on, and the report compares p50/p99/p99.9. The workload
// oversubscribes workers (default 32 goroutines; the reference host has one
// core), so the Go scheduler itself plays the paper's parked-goroutine
// adversary: a worker that loses its races gets descheduled mid-streak for
// whole runqueue rounds. Without helping its op waits for its own next
// timeslice every retry; with helping the op is announced and any scheduled
// handle completes it, which is what pulls the p99.9 in.
//
// Tail percentiles under schedulers are noisy, so the two arms alternate
// over several rounds (off/on pairs share machine state) and each arm's
// percentiles are computed over the samples pooled across its rounds.
//
// The forced failures come from internal/chaos, so this binary only exists
// under `-tags chaos` (see stub.go); scripts/latency.sh builds and runs it
// to produce BENCH_latency.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	dq "repro"
	"repro/internal/chaos"
	"repro/internal/hostmeta"
	"repro/internal/xrand"
)

// arm is one configuration's latency profile over all its rounds.
type arm struct {
	Helping   bool    `json:"helping"`
	Ops       uint64  `json:"ops"`
	P50Us     float64 `json:"p50_us"`
	P99Us     float64 `json:"p99_us"`
	P999Us    float64 `json:"p999_us"`
	MaxUs     float64 `json:"max_us"`
	Announces uint64  `json:"announces"`
	Helps     uint64  `json:"helps_given"`
}

type report struct {
	Generated string        `json:"generated"`
	Host      hostmeta.Host `json:"host"`
	Workload  string        `json:"workload"`
	DurationS float64       `json:"duration_s"`
	Rounds    int           `json:"rounds"`
	Workers   int           `json:"workers"`
	FailProb  float64       `json:"fail_prob"`
	Watchdog  int           `json:"watchdog_threshold"`
	Off       arm           `json:"helping_off"`
	On        arm           `json:"helping_on"`
	// P999Ratio is off/on: > 1 means helping improved the p99.9 tail.
	P999Ratio float64 `json:"p999_improvement_off_over_on"`
}

func main() {
	var (
		duration = flag.Duration("duration", time.Second, "measured window length per arm per round")
		rounds   = flag.Int("rounds", 4, "alternating off/on rounds; percentiles pool all rounds of an arm")
		workers  = flag.Int("workers", 32, "concurrent worker goroutines (oversubscribe the cores so the scheduler parks losers mid-streak)")
		failProb = flag.Float64("failprob", 0.9, "forced-failure probability per transition attempt")
		watchdog = flag.Int("watchdog", 8, "livelock-watchdog streak threshold (announce trips at 2x)")
		prefill  = flag.Int("prefill", 256, "elements inserted before measuring")
		seed     = flag.Uint64("seed", 1, "chaos schedule seed")
		out      = flag.String("out", "BENCH_latency.json", "output path")
	)
	flag.Parse()

	cfg := runConfig{
		duration: *duration,
		workers:  *workers,
		failProb: *failProb,
		watchdog: *watchdog,
		prefill:  *prefill,
	}
	var offSamples, onSamples []int64
	off := arm{Helping: false}
	on := arm{Helping: true}
	for r := 0; r < *rounds; r++ {
		rs := *seed + uint64(r)*0x9e3779b97f4a7c15
		fmt.Fprintf(os.Stderr, "== round %d/%d: helping off ==\n", r+1, *rounds)
		s, a, h := runWindow(cfg, false, rs)
		offSamples = append(offSamples, s...)
		off.Announces += a
		off.Helps += h
		fmt.Fprintf(os.Stderr, "== round %d/%d: helping on ==\n", r+1, *rounds)
		s, a, h = runWindow(cfg, true, rs)
		onSamples = append(onSamples, s...)
		on.Announces += a
		on.Helps += h
	}
	summarize(&off, offSamples)
	summarize(&on, onSamples)

	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Host:      hostmeta.Collect(),
		Workload: fmt.Sprintf(
			"mixed 4-way push/pop under FailProb=%.2f on L1-L7 (chaos build), %d workers, prefill %d",
			*failProb, *workers, *prefill),
		DurationS: duration.Seconds(),
		Rounds:    *rounds,
		Workers:   *workers,
		FailProb:  *failProb,
		Watchdog:  *watchdog,
		Off:       off,
		On:        on,
	}
	if on.P999Us > 0 {
		rep.P999Ratio = off.P999Us / on.P999Us
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchlatency:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchlatency:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	fmt.Fprintf(os.Stderr, "  pooled p99.9 off=%.0fus on=%.0fus (off/on %.2fx)\n",
		off.P999Us, on.P999Us, rep.P999Ratio)
}

type runConfig struct {
	duration time.Duration
	workers  int
	failProb float64
	watchdog int
	prefill  int
}

// summarize fills a's percentile fields from its pooled samples.
func summarize(a *arm, samples []int64) {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	a.Ops = uint64(len(samples))
	a.P50Us = pctUs(samples, 0.50)
	a.P99Us = pctUs(samples, 0.99)
	a.P999Us = pctUs(samples, 0.999)
	if n := len(samples); n > 0 {
		a.MaxUs = float64(samples[n-1]) / 1e3
	}
}

// runWindow measures one window under the storm schedule and returns every
// op's wall latency in nanoseconds plus the window's announce/help counts.
func runWindow(cfg runConfig, helping bool, seed uint64) (samples []int64, announces, helps uint64) {
	opts := []dq.Option{
		dq.WithMaxThreads(cfg.workers + 1),
		dq.WithWatchdogThreshold(cfg.watchdog),
	}
	if helping {
		opts = append(opts, dq.WithHelping(true))
	}
	d := dq.New[uint32](opts...)
	h := d.Register()
	for i := 0; i < cfg.prefill; i++ {
		if err := h.PushRight(uint32(i)); err != nil {
			fmt.Fprintln(os.Stderr, "benchlatency: prefill:", err)
			os.Exit(1)
		}
	}
	h.Flush()

	s := chaos.NewSchedule(seed).SetAll(
		chaos.TransitionPoints(), chaos.Rule{FailProb: cfg.failProb})
	chaos.Arm(s)
	defer chaos.Disarm()

	var (
		start sync.WaitGroup
		gate  = make(chan struct{})
		stop  atomic.Bool
		wg    sync.WaitGroup
		mu    sync.Mutex
	)
	start.Add(cfg.workers)
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wh := d.Register()
			rng := xrand.NewXoshiro256(seed ^ uint64(w+1)*0x9e3779b97f4a7c15)
			local := make([]int64, 0, 1<<16)
			start.Done()
			<-gate
			for !stop.Load() {
				op := rng.Intn(4)
				v := uint32(len(local)) & 0x00FFFFFF
				t0 := time.Now()
				switch op {
				case 0:
					wh.PushLeft(v)
				case 1:
					wh.PushRight(v)
				case 2:
					wh.PopLeft()
				case 3:
					wh.PopRight()
				}
				local = append(local, time.Since(t0).Nanoseconds())
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(w)
	}
	start.Wait()
	close(gate)
	time.Sleep(cfg.duration)
	stop.Store(true)
	wg.Wait()
	chaos.Disarm()

	m := d.Metrics()
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	fmt.Fprintf(os.Stderr,
		"  ops=%d p50=%.0fus p99=%.0fus p99.9=%.0fus announces=%d helps=%d\n",
		len(sorted), pctUs(sorted, 0.50), pctUs(sorted, 0.99), pctUs(sorted, 0.999),
		m.Announces, m.HelpsGiven)
	return samples, m.Announces, m.HelpsGiven
}

// pctUs returns the p-th percentile of sorted nanosecond samples, in
// microseconds (nearest-rank).
func pctUs(sorted []int64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / 1e3
}
