// Command benchdepq measures the cost of priority over the pool and
// writes BENCH_depq.json: the alternating submit/serve workload at each
// band count in the sweep, once through a plain Pool of the same shard
// count (priority-as-key routing, so both arms spread identically — the
// baseline is the DEPQ minus stamps and ordering guarantees) and once
// through the DEPQ front-end with band-stamp reservations and
// two-choice selection, reporting throughput plus the
// priority inversion (max and mean) the relaxation actually produced.
// See scripts/bench_depq.sh.
//
// Single-arm modes (-mode pool, -mode depq) emit one {"ops_per_sec":
// {...}, "host": {...}} run for A/B scripts; -mode curve (the default)
// writes the full report. -gate-inv-bound turns the configured
// -band-bound into an exit status: any DEPQ measurement whose observed
// max inversion exceeds it fails the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	dq "repro"
	"repro/internal/hostmeta"
)

// armResult is one (arm, bands, threads) measurement.
type armResult struct {
	opsPerSec float64
	invMax    uint64
	invMean   float64
}

// run is one arm's sweep, keyed by goroutine count.
type run struct {
	Label     string             `json:"label"`
	Arm       string             `json:"arm"`
	Bands     int                `json:"bands"`
	BandBound int                `json:"band_bound,omitempty"`
	Choice    int                `json:"choice,omitempty"`
	OpsPerSec map[string]float64 `json:"ops_per_sec"`
	// InvMax/InvMean report the observed priority inversion per thread
	// count (depq arm only; the pool arm has no priorities to invert).
	InvMax     map[string]uint64  `json:"inv_max,omitempty"`
	InvMean    map[string]float64 `json:"inv_mean,omitempty"`
	TrialsUsed int                `json:"trials"`
}

type report struct {
	Generated string        `json:"generated"`
	Host      hostmeta.Host `json:"host"`
	Workload  string        `json:"workload"`
	DurationS float64       `json:"duration_s"`
	Threads   []int         `json:"threads"`
	Bands     []int         `json:"bands"`
	BandBound int           `json:"band_bound"`
	Choice    int           `json:"choice"`
	Pool      []run         `json:"pool"`
	Depq      []run         `json:"depq"`
	// Overhead is depq/pool throughput keyed "bands/threads" — the price
	// of priority at that point (1.0 = free, 0.5 = half throughput).
	Overhead map[string]float64 `json:"throughput_depq_over_pool"`
}

func main() {
	var (
		duration    = flag.Duration("duration", 500*time.Millisecond, "measured run length per trial")
		trials      = flag.Int("trials", 3, "trials per configuration (throughput is the mean)")
		threadsFlag = flag.String("threads", "1,4,16", "comma-separated goroutine counts")
		bandsFlag   = flag.String("bands", "2,4,8", "comma-separated band counts (curve mode)")
		bound       = flag.Int("band-bound", 2, "priority-inversion bound for the depq arm (-1 = unbounded)")
		choice      = flag.Int("choice", 2, "d-choice width inside the inversion window")
		prefill     = flag.Int("prefill", 1024, "jobs inserted before measuring (spread round-robin over bands)")
		mode        = flag.String("mode", "curve", "curve (full report), or one arm: pool, depq")
		out         = flag.String("out", "BENCH_depq.json", "output path")
		gate        = flag.Bool("gate-inv-bound", false, "exit 1 if any depq measurement's observed max inversion exceeds -band-bound")
	)
	flag.Parse()

	threads, err := parseInts(*threadsFlag)
	if err != nil || len(threads) == 0 {
		fatalf("bad -threads: %v", err)
	}
	bandCounts, err := parseInts(*bandsFlag)
	if err != nil || len(bandCounts) == 0 {
		fatalf("bad -bands: %v", err)
	}
	if *gate && *bound < 0 {
		fatalf("-gate-inv-bound needs a non-negative -band-bound")
	}

	cfg := benchConfig{
		duration: *duration,
		trials:   *trials,
		prefill:  *prefill,
		bound:    *bound,
		choice:   *choice,
	}

	gateOK := true
	sweep := func(arm string, bands int) run {
		r := run{
			Label:      fmt.Sprintf("%s bands=%d", arm, bands),
			Arm:        arm,
			Bands:      bands,
			OpsPerSec:  map[string]float64{},
			TrialsUsed: *trials,
		}
		if arm == "depq" {
			if cfg.bound >= 0 {
				r.BandBound = cfg.bound
			}
			r.Choice = cfg.choice
			r.InvMax = map[string]uint64{}
			r.InvMean = map[string]float64{}
		}
		for _, t := range threads {
			res := measure(arm, bands, t, cfg)
			key := strconv.Itoa(t)
			r.OpsPerSec[key] = res.opsPerSec
			line := fmt.Sprintf("  %-18s t=%-3d %14.0f ops/s", r.Label, t, res.opsPerSec)
			if arm == "depq" {
				r.InvMax[key] = res.invMax
				r.InvMean[key] = res.invMean
				line += fmt.Sprintf("  inversion max=%d mean=%.2f", res.invMax, res.invMean)
				if *gate && cfg.bound >= 0 && res.invMax > uint64(cfg.bound) {
					gateOK = false
					line += fmt.Sprintf("  GATE: exceeds bound %d", cfg.bound)
				}
			}
			fmt.Fprintln(os.Stderr, line)
		}
		return r
	}

	switch *mode {
	case "pool", "depq":
		r := sweep(*mode, bandCounts[0])
		writeJSON(*out, struct {
			run
			Host hostmeta.Host `json:"host"`
		}{r, hostmeta.Collect()})
		fmt.Fprintf(os.Stderr, "wrote %s arm to %s\n", *mode, *out)

	case "curve":
		var pool, depq []run
		overhead := map[string]float64{}
		for _, b := range bandCounts {
			fmt.Fprintf(os.Stderr, "== bands=%d ==\n", b)
			pr := sweep("pool", b)
			dr := sweep("depq", b)
			pool = append(pool, pr)
			depq = append(depq, dr)
			for _, t := range threads {
				key := strconv.Itoa(t)
				if base := pr.OpsPerSec[key]; base > 0 {
					overhead[fmt.Sprintf("%d/%s", b, key)] = dr.OpsPerSec[key] / base
				}
			}
		}
		rep := report{
			Generated: time.Now().UTC().Format(time.RFC3339),
			Host:      hostmeta.Collect(),
			Workload:  fmt.Sprintf("alternating submit/serve on uint32 (every 8th serve a PopMax shed), prefill %d", *prefill),
			DurationS: duration.Seconds(),
			Threads:   threads,
			Bands:     bandCounts,
			BandBound: *bound,
			Choice:    *choice,
			Pool:      pool,
			Depq:      depq,
			Overhead:  overhead,
		}
		writeJSON(*out, rep)
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)

	default:
		fatalf("unknown -mode %q (want curve, pool, or depq)", *mode)
	}

	if *gate {
		if !gateOK {
			fatalf("inversion-bound gate: FAIL — observed inversion exceeded the configured bound %d", *bound)
		}
		fmt.Fprintln(os.Stderr, "inversion-bound gate: PASS")
	}
}

type benchConfig struct {
	duration time.Duration
	trials   int
	prefill  int
	bound    int
	choice   int
}

// submitServe is the per-worker op pair every arm reduces to, so the
// measured loop is identical across arms. serve's bool argument selects
// the shed end (true = PopMax) where the arm has one.
type submitServe struct {
	submit func(v uint32, prio int) error
	serve  func(shed bool) bool
	done   func()
}

// measure runs cfg.trials trials of the alternating workload and returns
// the mean throughput; for the depq arm it also merges the observed
// inversion snapshot across trials (max of maxes, pop-weighted mean).
func measure(arm string, bands, threads int, cfg benchConfig) armResult {
	var (
		sum     float64
		invMax  uint64
		invSum  uint64
		invPops uint64
	)
	for trial := 0; trial < cfg.trials; trial++ {
		ops, m := runTrial(arm, bands, threads, cfg)
		sum += ops
		if m.InvMax > invMax {
			invMax = m.InvMax
		}
		invSum += m.InvSum
		invPops += m.Pops()
	}
	res := armResult{opsPerSec: sum / float64(cfg.trials), invMax: invMax}
	if invPops > 0 {
		res.invMean = float64(invSum) / float64(invPops)
	}
	return res
}

// runTrial builds a fresh structure, prefills it, and drives the
// alternating submit/serve loop on `threads` goroutines for the
// configured duration.
func runTrial(arm string, bands, threads int, cfg benchConfig) (opsPerSec float64, m dq.DepqMetrics) {
	shardOpts := dq.WithShardOptions(dq.WithMaxThreads(threads + 1))
	var (
		q       *dq.DEPQ[uint32]
		pool    *dq.Pool[uint32]
		workers = make([]submitServe, threads)
		seed    submitServe
	)
	switch arm {
	case "pool":
		// Key-affinity with key = priority: identical spread to the DEPQ's
		// band mapping, minus the stamps and ordered selection.
		pool = dq.NewPool[uint32](bands, dq.WithRouting(dq.RouteKeyAffinity), shardOpts)
		mk := func() submitServe {
			h := pool.Register()
			var pops int
			return submitServe{
				submit: func(v uint32, prio int) error { return h.PushLeft(uint64(prio), v) },
				serve: func(shed bool) bool {
					// Rotate the pop key so the baseline drains every shard the
					// submits feed — spreading without any priority semantics.
					pops++
					k := uint64(pops % bands)
					if shed {
						_, ok := h.PopLeft(k)
						return ok
					}
					_, ok := h.PopRight(k)
					return ok
				},
				done: h.Flush,
			}
		}
		for i := range workers {
			workers[i] = mk()
		}
		seed = mk()
	case "depq":
		opts := []dq.DEPQOption{
			dq.WithBands(bands),
			dq.WithBandChoice(cfg.choice),
			dq.WithDEPQPool(shardOpts),
		}
		if cfg.bound >= 0 {
			opts = append(opts, dq.WithBandBound(min(cfg.bound, bands-1)))
		}
		q = dq.NewDEPQ[uint32](opts...)
		mk := func() submitServe {
			h := q.Register()
			return submitServe{
				submit: h.Push,
				serve: func(shed bool) bool {
					if shed {
						_, _, ok := h.PopMax()
						return ok
					}
					_, _, ok := h.PopMin()
					return ok
				},
				done: h.Flush,
			}
		}
		for i := range workers {
			workers[i] = mk()
		}
		seed = mk()
	default:
		fatalf("unknown arm %q", arm)
	}

	for i := 0; i < cfg.prefill; i++ {
		if err := seed.submit(uint32(i), i%bands); err != nil {
			fatalf("prefill: %v", err)
		}
	}
	seed.done()

	var (
		stop  atomic.Bool
		total atomic.Uint64
		wg    sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(ss submitServe, tag uint32) {
			defer wg.Done()
			var ops uint64
			v := tag << 16
			for i := 0; !stop.Load(); i++ {
				if err := ss.submit(v, i%bands); err != nil {
					fatalf("submit: %v", err)
				}
				ss.serve(i%8 == 7)
				ops += 2
				v++
			}
			ss.done()
			total.Add(ops)
		}(workers[w], uint32(w))
	}
	time.Sleep(cfg.duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	if q != nil {
		m = q.DepqMetrics()
	}
	return float64(total.Load()) / elapsed, m
}

func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("value %d must be positive", n)
		}
		out = append(out, n)
	}
	return out, nil
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdepq: "+format+"\n", args...)
	os.Exit(1)
}
