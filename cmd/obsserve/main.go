// Command obsserve runs a continuous mixed workload against the deque and
// serves its observability surface over HTTP — a worked example of wiring
// the metrics layer into a service, and a handy way to watch the transition
// mix evolve live.
//
// Endpoints:
//
//	/metrics              Prometheus text exposition of a fresh Metrics
//	                      snapshot, including the per-op-class latency
//	                      histograms and quantile gauges
//	/trace                JSON dump of the sampled-op ring (WithTracing)
//	/debug/flightrecorder JSON dump of the always-on distress-event ring
//	/debug/vars           expvar, including the deque under "deque"
//	/debug/pprof          pprof handlers; workers carry deque_op labels
//
// Example:
//
//	obsserve -addr :8723 -workers 4 -pattern deque -trace 1024 &
//	curl -s localhost:8723/metrics | grep op_latency
//	curl -s localhost:8723/debug/flightrecorder
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	dq "repro"
	"repro/internal/obs"
	"repro/internal/xrand"
)

// newMux builds the full HTTP surface over one deque — split from main so
// handler tests can drive it through httptest without a real listener or
// the global DefaultServeMux.
func newMux(d *dq.Deque[uint32]) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := dq.WriteMetricsProm(rw, "deque", d.Metrics()); err != nil {
			fmt.Fprintln(os.Stderr, "write /metrics:", err)
		}
		if err := dq.WriteLatMetricsProm(rw, "deque", d.LatencySnapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "write /metrics:", err)
		}
	})
	mux.HandleFunc("/trace", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		recs := d.TraceRecords()
		out := struct {
			Total    uint64           `json:"total_sampled"`
			Records  []dq.TraceRecord `json:"records"`
			Rendered []string         `json:"rendered"`
		}{Total: d.TraceTotal(), Records: recs}
		for _, r := range recs {
			out.Rendered = append(out.Rendered, r.String())
		}
		if err := json.NewEncoder(rw).Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "write /trace:", err)
		}
	})
	mux.HandleFunc("/debug/flightrecorder", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		out := struct {
			Total   uint64            `json:"total"`
			Records []dq.FlightRecord `json:"records"`
		}{Total: d.FlightTotal(), Records: d.FlightRecords()}
		if err := json.NewEncoder(rw).Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "write /debug/flightrecorder:", err)
		}
	})
	// A private mux gets no automatic debug handlers; register the expvar
	// and pprof surfaces explicitly.
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeFinalSnapshot emits the shutdown metrics snapshot: Prometheus
// metrics (with latency) plus a flight-recorder dump when anything was
// recorded, so a terminated run leaves its evidence behind.
func writeFinalSnapshot(w io.Writer, d *dq.Deque[uint32]) {
	if err := dq.WriteMetricsProm(w, "deque", d.Metrics()); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	if err := dq.WriteLatMetricsProm(w, "deque", d.LatencySnapshot()); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	if d.FlightTotal() > 0 {
		if err := d.WriteFlightRecords(w); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
}

func main() {
	var (
		addr    = flag.String("addr", "localhost:8723", "HTTP listen address")
		workers = flag.Int("workers", 4, "workload goroutines")
		pattern = flag.String("pattern", "deque", "access pattern: deque, stack, or queue")
		elim    = flag.Bool("elim", false, "enable the elimination arrays")
		trace   = flag.Int("trace", 1024, "op-trace sample rate (0 disables /trace content)")
		seed    = flag.Uint64("seed", 1, "RNG seed")
	)
	flag.Parse()

	opts := []dq.Option{
		dq.WithMaxThreads(*workers + 1),
		dq.WithElimination(*elim),
		dq.WithTracing(*trace),
	}
	d, err := dq.NewChecked[uint32](opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := d.PublishExpvar("deque"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	for w := 0; w < *workers; w++ {
		go func(w int) {
			// pprof labels let `go tool pprof -tagfocus deque_op=...`
			// slice the profile by workload role.
			obs.Do(*pattern, w, func() { drive(d, *pattern, *seed+uint64(w)*977) })
		}(w)
	}

	fmt.Printf("obsserve: pattern=%s workers=%d elim=%v trace=%d obs=%v on http://%s\n",
		*pattern, *workers, *elim, *trace, dq.MetricsEnabled, *addr)

	// Serve until SIGINT/SIGTERM, then shut down gracefully: in-flight
	// scrapes finish, and a final metrics snapshot goes to stderr so a
	// terminated run still leaves its evidence behind.
	srv := &http.Server{Addr: *addr, Handler: newMux(d)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "obsserve: shutdown:", err)
		}
		cancel()
	}
	fmt.Fprintln(os.Stderr, "obsserve: final metrics snapshot")
	writeFinalSnapshot(os.Stderr, d)
}

// drive runs one worker's endless workload loop under the given pattern.
func drive(d *dq.Deque[uint32], pattern string, seed uint64) {
	h := d.Register()
	rng := xrand.NewXoshiro256(seed)
	var i uint32
	for {
		i++
		v := i & 0x00FFFFFF
		switch pattern {
		case "stack":
			if rng.Intn(2) == 0 {
				h.PushLeft(v)
			} else {
				h.PopLeft()
			}
		case "queue":
			if rng.Intn(2) == 0 {
				h.PushLeft(v)
			} else {
				h.PopRight()
			}
		default: // deque: the paper's mixed 4-way workload
			switch rng.Intn(4) {
			case 0:
				h.PushLeft(v)
			case 1:
				h.PushRight(v)
			case 2:
				h.PopLeft()
			case 3:
				h.PopRight()
			}
		}
	}
}
