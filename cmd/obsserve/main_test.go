package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	dq "repro"
)

// newTestDeque builds a traced deque and runs a little traffic through it
// so every endpoint has something to show.
func newTestDeque(t *testing.T) *dq.Deque[uint32] {
	t.Helper()
	d, err := dq.NewChecked[uint32](
		dq.WithMaxThreads(2),
		dq.WithTracing(1),
		dq.WithLatencySample(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	h := d.Register()
	for i := uint32(0); i < 200; i++ {
		if err := h.PushLeft(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if _, ok := h.PopRight(); !ok {
			t.Fatal("unexpected empty pop")
		}
	}
	return d
}

func get(t *testing.T, srv *httptest.Server, path string) (string, *http.Response) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return string(body), resp
}

func TestMetricsEndpoint(t *testing.T) {
	d := newTestDeque(t)
	srv := httptest.NewServer(newMux(d))
	defer srv.Close()

	body, resp := get(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, "deque_ops_total") {
		t.Fatalf("/metrics missing deque_ops_total:\n%.500s", body)
	}
	if dq.MetricsEnabled {
		if !strings.Contains(body, "deque_op_latency") {
			t.Fatalf("/metrics missing latency series despite WithLatencySample(1):\n%.500s", body)
		}
		if !strings.Contains(body, `class="push_left"`) {
			t.Fatalf("/metrics missing push_left latency class:\n%.500s", body)
		}
	}
}

func TestTraceEndpoint(t *testing.T) {
	d := newTestDeque(t)
	srv := httptest.NewServer(newMux(d))
	defer srv.Close()

	body, resp := get(t, srv, "/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace status = %d", resp.StatusCode)
	}
	var out struct {
		Total   uint64           `json:"total_sampled"`
		Records []dq.TraceRecord `json:"records"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if out.Total == 0 || len(out.Records) == 0 {
		t.Fatalf("/trace empty with WithTracing(1): total=%d records=%d", out.Total, len(out.Records))
	}
}

func TestFlightRecorderEndpoint(t *testing.T) {
	d := newTestDeque(t)
	srv := httptest.NewServer(newMux(d))
	defer srv.Close()

	body, resp := get(t, srv, "/debug/flightrecorder")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flightrecorder status = %d", resp.StatusCode)
	}
	var out struct {
		Total   uint64            `json:"total"`
		Records []dq.FlightRecord `json:"records"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("/debug/flightrecorder not JSON: %v", err)
	}
	// An uncontended single-handle workload records no distress; the
	// endpoint must still answer with a well-formed empty dump.
	if uint64(len(out.Records)) > out.Total {
		t.Fatalf("retained %d records but total is %d", len(out.Records), out.Total)
	}
}

func TestExpvarEndpoint(t *testing.T) {
	d := newTestDeque(t)
	// Distinct name: expvar registration is global and permanent across
	// the test binary.
	if err := d.PublishExpvar("deque_handler_test"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(d))
	defer srv.Close()

	body, resp := get(t, srv, "/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["deque_handler_test"]; !ok {
		t.Fatal("/debug/vars missing published deque variable")
	}
}

func TestPprofEndpoint(t *testing.T) {
	d := newTestDeque(t)
	srv := httptest.NewServer(newMux(d))
	defer srv.Close()

	body, resp := get(t, srv, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index missing profile listing:\n%.300s", body)
	}
}

func TestFinalSnapshot(t *testing.T) {
	d := newTestDeque(t)
	var sb strings.Builder
	writeFinalSnapshot(&sb, d)
	out := sb.String()
	if !strings.Contains(out, "deque_ops_total") {
		t.Fatalf("final snapshot missing metrics:\n%.300s", out)
	}
	if dq.MetricsEnabled && !strings.Contains(out, "deque_op_latency") {
		t.Fatalf("final snapshot missing latency series:\n%.300s", out)
	}
}
