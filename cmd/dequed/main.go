// Command dequed serves a sharded deque pool over TCP, speaking the
// internal/wire protocol — the paper's structure as a network service.
// Each connection gets its own goroutine and a pooled per-connection
// handle; requests on a connection are answered strictly in order, so
// clients may pipeline freely.
//
// Lifecycle: SIGINT/SIGTERM starts a graceful drain — the listener
// closes, connected clients keep being served until they hang up or the
// drain timeout passes (then in-flight operations are cancelled), and a
// final Prometheus-format metrics snapshot goes to stderr before exit.
//
// Example:
//
//	dequed -addr :7411 -shards 4 -route least -metrics localhost:7412 &
//	dqload -addr localhost:7411 -conns 8 -duration 5s
//	curl -s localhost:7412/metrics | grep ops_total
//	kill -TERM %1   # drains, dumps metrics, exits 0
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	dq "repro"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7411", "TCP listen address (use :0 with -addr-file for an ephemeral port)")
		addrFile = flag.String("addr-file", "", "write the bound listen address to this file once listening")
		shards   = flag.Int("shards", 4, "deque shards in the pool")
		route    = flag.String("route", "rr", "routing policy: rr, key, or least")
		steal    = flag.Bool("steal", true, "steal-on-empty rebalancing across shards")
		capacity = flag.Int("capacity", 0, "per-shard value capacity (0 = default)")
		maxconns = flag.Int("maxconns", 64, "concurrent connection cap (pool handles are pooled up to this)")
		reclaim  = flag.String("reclaim", "gc", "node reclamation: gc, hazard, or epoch (recycling)")
		memlimit = flag.Int64("memlimit", 0, "per-shard node-memory cap in bytes (0 = unbounded); exceeding pushes get STATUS_FULL")
		helping  = flag.Bool("helping", false, "announcement/helping layer: starving ops are completed by other threads (bounded tail latency)")
		watchdog = flag.Int("watchdog", 0, "livelock-watchdog streak threshold per shard (0 = default 256)")
		metrics  = flag.String("metrics", "", "serve Prometheus /metrics and /debug/flightrecorder on this HTTP address (empty disables)")
		fdump    = flag.Duration("flight-dump", 0, "auto-dump the flight recorder to stderr on watchdog/announce distress, rate-limited to one dump per this interval (0 disables)")
		drain    = flag.Duration("drain-timeout", 5*time.Second, "graceful drain window on SIGTERM before in-flight ops are cancelled")
		relaxed  = flag.Bool("relaxed", false, "serve through the semantically-relaxed d-choice front-end (keys ignored; ordering relaxed across shards)")
		dFlag    = flag.Int("d", 2, "relaxed sample width: shards sampled per op (0 = strict passthrough; needs -relaxed)")
		rank     = flag.Int("rank-bound", 0, "worst-case rank-error bound for -relaxed (0 = unbounded; else >= 4*(shards-1))")
	)
	flag.Parse()

	policy, err := dq.ParseRouting(*route)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dequed:", err)
		os.Exit(2)
	}
	rpol, err := dq.ParseReclamation(*reclaim)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dequed:", err)
		os.Exit(2)
	}
	var shardOpts []dq.Option
	if *capacity > 0 {
		shardOpts = append(shardOpts, dq.WithCapacity(*capacity))
	}
	if rpol != dq.ReclaimGC {
		shardOpts = append(shardOpts, dq.WithReclamation(rpol))
	}
	if *memlimit > 0 {
		shardOpts = append(shardOpts, dq.WithMemoryLimit(*memlimit))
	}
	if *helping {
		shardOpts = append(shardOpts, dq.WithHelping(true))
	}
	if *watchdog > 0 {
		shardOpts = append(shardOpts, dq.WithWatchdogThreshold(*watchdog))
	}
	srv, err := NewServer(Config{
		Shards:       *shards,
		Route:        policy,
		Steal:        *steal,
		MaxConns:     *maxconns,
		DrainTimeout: *drain,
		ShardOpts:    shardOpts,
		Relaxed:      *relaxed,
		Sample:       *dFlag,
		RankBound:    *rank,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dequed:", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dequed:", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dequed:", err)
			os.Exit(1)
		}
	}

	if *fdump > 0 {
		srv.Pool().SetFlightDump(os.Stderr, *fdump)
	}

	// Optional scrape endpoint: a fresh pool-merged snapshot per request.
	var msrv *http.Server
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := dq.WriteMetricsProm(rw, "dequed", srv.Pool().Metrics()); err != nil {
				fmt.Fprintln(os.Stderr, "dequed: write /metrics:", err)
			}
			if err := dq.WriteLatMetricsProm(rw, "dequed", srv.LatencySnapshot()); err != nil {
				fmt.Fprintln(os.Stderr, "dequed: write /metrics:", err)
			}
			if rx := srv.Relaxed(); rx != nil {
				if err := dq.WriteRelaxMetricsProm(rw, "dequed", rx.RelaxMetrics()); err != nil {
					fmt.Fprintln(os.Stderr, "dequed: write /metrics:", err)
				}
			}
		})
		mux.HandleFunc("/debug/flightrecorder", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(rw)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]any{
				"total":   srv.Pool().FlightTotal(),
				"records": srv.Pool().FlightRecords(),
			}); err != nil {
				fmt.Fprintln(os.Stderr, "dequed: write /debug/flightrecorder:", err)
			}
		})
		msrv = &http.Server{Addr: *metrics, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "dequed: metrics server:", err)
			}
		}()
	}

	mode := ""
	if *relaxed {
		mode = fmt.Sprintf(" relaxed(d=%d,rank-bound=%d)", *dFlag, *rank)
	}
	fmt.Printf("dequed: %d shards, route=%s steal=%v maxconns=%d%s on %s\n",
		*shards, policy, *steal, *maxconns, mode, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	exit := 0
	select {
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills
		fmt.Fprintf(os.Stderr, "dequed: draining (up to %s)\n", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "dequed: hard stop after drain timeout:", err)
		}
		cancel()
	case err := <-errc:
		if err != nil {
			fmt.Fprintln(os.Stderr, "dequed:", err)
			exit = 1
		}
	}
	if msrv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		msrv.Shutdown(sctx)
		cancel()
	}

	fmt.Fprintln(os.Stderr, "dequed: final metrics snapshot")
	if err := dq.WriteMetricsProm(os.Stderr, "dequed", srv.Pool().Metrics()); err != nil {
		fmt.Fprintln(os.Stderr, "dequed:", err)
	}
	if rx := srv.Relaxed(); rx != nil {
		if err := dq.WriteRelaxMetricsProm(os.Stderr, "dequed", rx.RelaxMetrics()); err != nil {
			fmt.Fprintln(os.Stderr, "dequed:", err)
		}
	}
	os.Exit(exit)
}
