package main

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"time"

	dq "repro"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Config collects everything a Server needs. The zero value is not
// usable; main (and the tests) fill it from flags.
type Config struct {
	Shards       int            // pool width
	Route        dq.RoutePolicy // routing policy for every connection
	Steal        bool           // steal-on-empty rebalancing
	MaxConns     int            // concurrent connection (= pool handle) cap
	DrainTimeout time.Duration  // Shutdown grace before hard-cancel (0 = forever)
	ShardOpts    []dq.Option    // forwarded to every shard (capacity, node size, ...)

	// Relaxed serves every connection through a Relaxed[uint32] d-choice
	// front-end instead of policy routing: request keys are ignored,
	// ordering is relaxed across shards by at most RankBound, and OpRelax
	// reports the observed rank-error snapshot. Sample is the d-choice
	// width (0 = strict passthrough) and RankBound the worst-case
	// rank-error cap (0 = unbounded); both ignored unless Relaxed.
	Relaxed   bool
	Sample    int
	RankBound int
}

// Server owns a sharded deque pool and serves the wire protocol over TCP.
// One goroutine per connection; each borrows a PoolHandle from a fixed
// freelist for the connection's lifetime — handle registration is
// permanent (each shard admits at most MaxThreads handles, ever), so the
// freelist is what lets connection churn run forever on a bounded pool.
type Server struct {
	cfg  Config
	pool *dq.Pool[uint32]
	rx   *dq.Relaxed[uint32] // non-nil in relaxed mode; pool == rx.Pool()

	// ctx cancels in-flight blocked operations on hard shutdown.
	ctx    context.Context
	cancel context.CancelFunc

	// Handle freelist: acquire prefers a parked handle, registers a new
	// one while under the cap, and otherwise waits for a connection to
	// finish. cap(handles) == MaxConns so release never blocks.
	handles    chan connHandle
	hmu        sync.Mutex
	registered int

	// latReg holds per-connection service-time recorders (the "service"
	// latency class: frame decoded → reply flushed, queueing included).
	// Deque-level classes live in the shards; LatencySnapshot merges both.
	latReg obs.LatRegistry

	lnMu sync.Mutex
	ln   net.Listener

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer validates cfg and builds the pool. MaxThreads for every shard
// is derived from MaxConns (+1 for the process's own metrics/drain use),
// so callers need not pass it in ShardOpts.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 64
	}
	opts := append([]dq.Option{dq.WithMaxThreads(cfg.MaxConns + 1)}, cfg.ShardOpts...)
	poolOpts := []dq.PoolOption{
		dq.WithRouting(cfg.Route),
		dq.WithStealing(cfg.Steal),
		dq.WithShardOptions(opts...),
	}
	var (
		pool *dq.Pool[uint32]
		rx   *dq.Relaxed[uint32]
		err  error
	)
	if cfg.Relaxed {
		rx, err = dq.NewRelaxedChecked[uint32](cfg.Shards,
			dq.WithRelaxation(cfg.Sample),
			dq.WithRankBound(cfg.RankBound),
			dq.WithRelaxedPool(poolOpts...),
		)
		if err == nil {
			pool = rx.Pool()
		}
	} else {
		pool, err = dq.NewPoolChecked[uint32](cfg.Shards, poolOpts...)
	}
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:     cfg,
		pool:    pool,
		rx:      rx,
		ctx:     ctx,
		cancel:  cancel,
		handles: make(chan connHandle, cfg.MaxConns),
		conns:   make(map[net.Conn]struct{}),
	}, nil
}

// Pool exposes the backing pool for the final metrics snapshot and tests.
func (s *Server) Pool() *dq.Pool[uint32] { return s.pool }

// Relaxed exposes the relaxed front-end (nil unless Config.Relaxed).
func (s *Server) Relaxed() *dq.Relaxed[uint32] { return s.rx }

// LatencySnapshot returns the exact merged latency histograms of the
// whole service: every shard's per-op classes, the pool-level routing
// classes, and the server's per-connection service times.
func (s *Server) LatencySnapshot() *dq.LatSnapshotSet {
	set := s.latReg.Merge()
	set.Merge(s.pool.LatencySnapshot())
	return set
}

// connHandle is one connection's accessor: the pool handle in strict
// mode, the relaxed handle when the server fronts the pool with
// Relaxed[uint32] (exactly one is non-nil).
type connHandle struct {
	ph  *dq.PoolHandle[uint32]
	rh  *dq.RelaxedHandle[uint32]
	lat *obs.LatRec // single-writer service-time histogram
}

// flush parks the handle cleanly before it returns to the freelist.
func (h connHandle) flush() {
	if h.rh != nil {
		h.rh.Flush()
		return
	}
	h.ph.Flush()
}

// Serve accepts connections on ln until the listener closes (Shutdown
// does that). A closed listener is a clean return, not an error.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
		}()
	}
}

// Shutdown drains gracefully: the listener closes (no new connections),
// existing connections keep being answered until they hang up, and only
// once ctx expires are in-flight operations cancelled and connections
// force-closed. Returns nil on a clean drain, ctx.Err() on the hard path.
func (s *Server) Shutdown(ctx context.Context) error {
	s.lnMu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.lnMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Hard stop: abort blocked Ctx operations, then unblock reads.
	s.cancel()
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	<-done
	return ctx.Err()
}

// acquireHandle borrows a pool (or relaxed) handle for one connection's
// lifetime.
func (s *Server) acquireHandle() (connHandle, error) {
	select {
	case h := <-s.handles:
		return h, nil
	default:
	}
	s.hmu.Lock()
	if s.registered < s.cfg.MaxConns {
		s.registered++
		s.hmu.Unlock()
		if s.rx != nil {
			return connHandle{rh: s.rx.Register(), lat: s.latReg.NewRec()}, nil
		}
		return connHandle{ph: s.pool.Register(), lat: s.latReg.NewRec()}, nil
	}
	s.hmu.Unlock()
	select {
	case h := <-s.handles:
		return h, nil
	case <-s.ctx.Done():
		return connHandle{}, s.ctx.Err()
	}
}

// serveConn runs one connection's request loop: read a frame, apply it to
// the pool, append the response, and flush only when the read buffer runs
// dry — that last rule is what makes pipelining pay (one flush per burst,
// not per frame). Any read error — clean EOF, mid-frame disconnect,
// protocol desync — ends the connection; the deque state is always
// consistent because every accepted operation completed before its
// response was queued.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	h, err := s.acquireHandle()
	if err != nil {
		return // shutting down
	}
	// Flush before parking: return cached slab capacity and drain pending
	// node retires, so a handle idling in the freelist neither strands
	// slab indices nor stalls node recycling for the whole pool.
	defer func() { h.flush(); s.handles <- h }()

	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	var (
		req     wire.Request
		resp    wire.Response
		scratch []byte
		out     []byte
		dst     []uint32
	)
	for {
		scratch, err = wire.ReadRequest(br, &req, scratch)
		if err != nil {
			return
		}
		var svc time.Time
		if obs.Enabled {
			svc = time.Now()
		}
		resp.Tag = req.Tag
		resp.Count = 0
		resp.Values = resp.Values[:0]
		dst = s.apply(h, &req, &resp, dst)
		out = wire.AppendResponse(out[:0], &resp)
		if _, err := bw.Write(out); err != nil {
			return
		}
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
		// Service time spans frame decoded → reply handed to the kernel
		// (or queued behind a pipelined burst) — the server-side half of
		// what a closed-loop client observes as round-trip latency.
		if obs.Enabled {
			h.lat.Record(obs.LatService, uint64(time.Since(svc)))
		}
	}
}

// clamp32 saturates a uint64 gauge into a wire uint32.
func clamp32(v uint64) uint32 {
	if v > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(v)
}

// apply executes one validated request against the connection's handle
// and fills resp. dst is the reusable pop buffer (returned possibly
// grown). Statuses follow wire.StatusOf: the deque's error contract
// crosses the wire unchanged. In relaxed mode the key is ignored —
// d-choice selection replaces routing.
func (s *Server) apply(h connHandle, req *wire.Request, resp *wire.Response, dst []uint32) []uint32 {
	if st := req.Validate(); st != wire.StatusOK {
		resp.Status = st
		return dst
	}
	left := req.Side == wire.Left
	switch req.Op {
	case wire.OpPing:
		resp.Status = wire.StatusOK

	case wire.OpLen:
		resp.Status = wire.StatusOK
		resp.Count = uint32(s.pool.LenExact())

	case wire.OpRelax:
		resp.Status = wire.StatusOK
		var m dq.RelaxMetrics
		if s.rx != nil {
			m = s.rx.RelaxMetrics()
		}
		resp.Count = clamp32(m.RankMax)
		resp.Values = append(resp.Values,
			clamp32(m.RankBound), clamp32(m.Sample), clamp32(m.Shards),
			clamp32(uint64(m.MeanRank()*1000)))

	case wire.OpStats:
		resp.Status = wire.StatusOK
		resp.Values, resp.Count = wire.AppendOpStats(resp.Values, s.LatencySnapshot())

	case wire.OpPush:
		var err error
		switch {
		case h.rh != nil && left:
			err = h.rh.PushLeftCtx(s.ctx, req.Values[0])
		case h.rh != nil:
			err = h.rh.PushRightCtx(s.ctx, req.Values[0])
		case left:
			err = h.ph.PushLeftCtx(s.ctx, req.Key, req.Values[0])
		default:
			err = h.ph.PushRightCtx(s.ctx, req.Key, req.Values[0])
		}
		resp.Status = wire.StatusOf(err)
		if err == nil {
			resp.Count = 1
		}

	case wire.OpPop:
		var (
			v   uint32
			ok  bool
			err error
		)
		switch {
		case h.rh != nil && left:
			v, ok, err = h.rh.PopLeftCtx(s.ctx)
		case h.rh != nil:
			v, ok, err = h.rh.PopRightCtx(s.ctx)
		case left:
			v, ok, err = h.ph.PopLeftCtx(s.ctx, req.Key)
		default:
			v, ok, err = h.ph.PopRightCtx(s.ctx, req.Key)
		}
		switch {
		case err != nil:
			resp.Status = wire.StatusOf(err)
		case !ok:
			resp.Status = wire.StatusEmpty
		default:
			resp.Status = wire.StatusOK
			resp.Count = 1
			resp.Values = append(resp.Values, v)
		}

	case wire.OpPushN:
		var (
			n   int
			err error
		)
		switch {
		case h.rh != nil && left:
			n, err = h.rh.PushLeftN(req.Values)
		case h.rh != nil:
			n, err = h.rh.PushRightN(req.Values)
		case left:
			n, err = h.ph.PushLeftN(req.Key, req.Values)
		default:
			n, err = h.ph.PushRightN(req.Key, req.Values)
		}
		resp.Status = wire.StatusOf(err)
		resp.Count = uint32(n)

	case wire.OpPopN:
		want := int(req.Count)
		if cap(dst) < want {
			dst = make([]uint32, want)
		}
		d := dst[:want]
		var n int
		switch {
		case h.rh != nil && left:
			n = h.rh.PopLeftN(d)
		case h.rh != nil:
			n = h.rh.PopRightN(d)
		case left:
			n = h.ph.PopLeftN(req.Key, d)
		default:
			n = h.ph.PopRightN(req.Key, d)
		}
		if n == 0 {
			resp.Status = wire.StatusEmpty
		} else {
			resp.Status = wire.StatusOK
			resp.Count = uint32(n)
			resp.Values = append(resp.Values, d[:n]...)
		}

	default:
		// Validate admits every op the protocol knows, but this server only
		// serves the plain pool ops — the DEPQ family (OpPushPrio…OpDepq)
		// belongs to cmd/schedd. A zero-value fallthrough would answer
		// StatusOK for an op that did nothing.
		resp.Status = wire.StatusBad
	}
	return dst
}
