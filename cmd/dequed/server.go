package main

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"time"

	dq "repro"
	"repro/internal/wire"
)

// Config collects everything a Server needs. The zero value is not
// usable; main (and the tests) fill it from flags.
type Config struct {
	Shards       int            // pool width
	Route        dq.RoutePolicy // routing policy for every connection
	Steal        bool           // steal-on-empty rebalancing
	MaxConns     int            // concurrent connection (= pool handle) cap
	DrainTimeout time.Duration  // Shutdown grace before hard-cancel (0 = forever)
	ShardOpts    []dq.Option    // forwarded to every shard (capacity, node size, ...)
}

// Server owns a sharded deque pool and serves the wire protocol over TCP.
// One goroutine per connection; each borrows a PoolHandle from a fixed
// freelist for the connection's lifetime — handle registration is
// permanent (each shard admits at most MaxThreads handles, ever), so the
// freelist is what lets connection churn run forever on a bounded pool.
type Server struct {
	cfg  Config
	pool *dq.Pool[uint32]

	// ctx cancels in-flight blocked operations on hard shutdown.
	ctx    context.Context
	cancel context.CancelFunc

	// Handle freelist: acquire prefers a parked handle, registers a new
	// one while under the cap, and otherwise waits for a connection to
	// finish. cap(handles) == MaxConns so release never blocks.
	handles    chan *dq.PoolHandle[uint32]
	hmu        sync.Mutex
	registered int

	lnMu sync.Mutex
	ln   net.Listener

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer validates cfg and builds the pool. MaxThreads for every shard
// is derived from MaxConns (+1 for the process's own metrics/drain use),
// so callers need not pass it in ShardOpts.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 64
	}
	opts := append([]dq.Option{dq.WithMaxThreads(cfg.MaxConns + 1)}, cfg.ShardOpts...)
	pool, err := dq.NewPoolChecked[uint32](cfg.Shards,
		dq.WithRouting(cfg.Route),
		dq.WithStealing(cfg.Steal),
		dq.WithShardOptions(opts...),
	)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:     cfg,
		pool:    pool,
		ctx:     ctx,
		cancel:  cancel,
		handles: make(chan *dq.PoolHandle[uint32], cfg.MaxConns),
		conns:   make(map[net.Conn]struct{}),
	}, nil
}

// Pool exposes the backing pool for the final metrics snapshot and tests.
func (s *Server) Pool() *dq.Pool[uint32] { return s.pool }

// Serve accepts connections on ln until the listener closes (Shutdown
// does that). A closed listener is a clean return, not an error.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
		}()
	}
}

// Shutdown drains gracefully: the listener closes (no new connections),
// existing connections keep being answered until they hang up, and only
// once ctx expires are in-flight operations cancelled and connections
// force-closed. Returns nil on a clean drain, ctx.Err() on the hard path.
func (s *Server) Shutdown(ctx context.Context) error {
	s.lnMu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.lnMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Hard stop: abort blocked Ctx operations, then unblock reads.
	s.cancel()
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	<-done
	return ctx.Err()
}

// acquireHandle borrows a pool handle for one connection's lifetime.
func (s *Server) acquireHandle() (*dq.PoolHandle[uint32], error) {
	select {
	case h := <-s.handles:
		return h, nil
	default:
	}
	s.hmu.Lock()
	if s.registered < s.cfg.MaxConns {
		s.registered++
		s.hmu.Unlock()
		return s.pool.Register(), nil
	}
	s.hmu.Unlock()
	select {
	case h := <-s.handles:
		return h, nil
	case <-s.ctx.Done():
		return nil, s.ctx.Err()
	}
}

// serveConn runs one connection's request loop: read a frame, apply it to
// the pool, append the response, and flush only when the read buffer runs
// dry — that last rule is what makes pipelining pay (one flush per burst,
// not per frame). Any read error — clean EOF, mid-frame disconnect,
// protocol desync — ends the connection; the deque state is always
// consistent because every accepted operation completed before its
// response was queued.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	h, err := s.acquireHandle()
	if err != nil {
		return // shutting down
	}
	// Flush before parking: return cached slab capacity and drain pending
	// node retires, so a handle idling in the freelist neither strands
	// slab indices nor stalls node recycling for the whole pool.
	defer func() { h.Flush(); s.handles <- h }()

	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	var (
		req     wire.Request
		resp    wire.Response
		scratch []byte
		out     []byte
		dst     []uint32
	)
	for {
		scratch, err = wire.ReadRequest(br, &req, scratch)
		if err != nil {
			return
		}
		resp.Tag = req.Tag
		resp.Count = 0
		resp.Values = resp.Values[:0]
		dst = s.apply(h, &req, &resp, dst)
		out = wire.AppendResponse(out[:0], &resp)
		if _, err := bw.Write(out); err != nil {
			return
		}
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// apply executes one validated request against the connection's handle
// and fills resp. dst is the reusable pop buffer (returned possibly
// grown). Statuses follow wire.StatusOf: the deque's error contract
// crosses the wire unchanged.
func (s *Server) apply(h *dq.PoolHandle[uint32], req *wire.Request, resp *wire.Response, dst []uint32) []uint32 {
	if st := req.Validate(); st != wire.StatusOK {
		resp.Status = st
		return dst
	}
	left := req.Side == wire.Left
	switch req.Op {
	case wire.OpPing:
		resp.Status = wire.StatusOK

	case wire.OpLen:
		resp.Status = wire.StatusOK
		resp.Count = uint32(s.pool.LenEstimate())

	case wire.OpPush:
		var err error
		if left {
			err = h.PushLeftCtx(s.ctx, req.Key, req.Values[0])
		} else {
			err = h.PushRightCtx(s.ctx, req.Key, req.Values[0])
		}
		resp.Status = wire.StatusOf(err)
		if err == nil {
			resp.Count = 1
		}

	case wire.OpPop:
		var (
			v   uint32
			ok  bool
			err error
		)
		if left {
			v, ok, err = h.PopLeftCtx(s.ctx, req.Key)
		} else {
			v, ok, err = h.PopRightCtx(s.ctx, req.Key)
		}
		switch {
		case err != nil:
			resp.Status = wire.StatusOf(err)
		case !ok:
			resp.Status = wire.StatusEmpty
		default:
			resp.Status = wire.StatusOK
			resp.Count = 1
			resp.Values = append(resp.Values, v)
		}

	case wire.OpPushN:
		var (
			n   int
			err error
		)
		if left {
			n, err = h.PushLeftN(req.Key, req.Values)
		} else {
			n, err = h.PushRightN(req.Key, req.Values)
		}
		resp.Status = wire.StatusOf(err)
		resp.Count = uint32(n)

	case wire.OpPopN:
		want := int(req.Count)
		if cap(dst) < want {
			dst = make([]uint32, want)
		}
		d := dst[:want]
		var n int
		if left {
			n = h.PopLeftN(req.Key, d)
		} else {
			n = h.PopRightN(req.Key, d)
		}
		if n == 0 {
			resp.Status = wire.StatusEmpty
		} else {
			resp.Status = wire.StatusOK
			resp.Count = uint32(n)
			resp.Values = append(resp.Values, d[:n]...)
		}
	}
	return dst
}
