package main

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	dq "repro"
	"repro/internal/core"
	"repro/internal/wire"
)

// startServer runs an in-process dequed on an ephemeral port and returns
// it with its address. The server is shut down with the test.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// connResult is one conservation worker's ledger: pushes the server
// confirmed, values it popped, and pushes whose responses were thrown
// away by an abrupt disconnect (landed-or-not unknown).
type connResult struct {
	confirmed []uint32
	popped    []uint32
	maybe     []uint32
	err       error
}

// TestE2EConservation drives 64 concurrent client connections through a
// small-capacity sharded pool — plenty of ErrFull backpressure, steals
// across shards, and a few clients that hang up mid-stream without
// reading their last responses — then drains the pool and checks
// exactly-once conservation: every confirmed push is popped exactly
// once, nothing is popped twice, and nothing appears from thin air.
func TestE2EConservation(t *testing.T) {
	const (
		workers = 64
		rounds  = 50
		batch   = 8
	)
	srv, addr := startServer(t, Config{
		Shards:   4,
		Route:    dq.RouteKeyAffinity,
		Steal:    true,
		MaxConns: workers + 4,
		ShardOpts: []dq.Option{
			dq.WithNodeSize(8),
			dq.WithCapacity(256), // per shard: 64 pushers overrun this fast
		},
	})

	results := make([]connResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = runConservationWorker(addr, w, rounds, batch)
		}(w)
	}
	wg.Wait()

	popSeen := make(map[uint32]bool)
	record := func(v uint32) {
		if popSeen[v] {
			t.Fatalf("value %#x popped twice", v)
		}
		popSeen[v] = true
	}
	universe := make(map[uint32]bool) // everything that may legally appear
	confirmed := make(map[uint32]bool)
	for w := range results {
		r := &results[w]
		if r.err != nil {
			t.Fatalf("worker %d: %v", w, r.err)
		}
		for _, v := range r.confirmed {
			confirmed[v] = true
			universe[v] = true
		}
		for _, v := range r.maybe {
			universe[v] = true
		}
		for _, v := range r.popped {
			record(v)
		}
	}

	// Quiescent drain: with stealing on, PopN returns 0 only after every
	// shard came up empty, so this loop empties the whole pool.
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for {
		vs, err := c.PopN(wire.Left, 1, 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) == 0 {
			break
		}
		for _, v := range vs {
			record(v)
		}
	}

	for v := range confirmed {
		if !popSeen[v] {
			t.Fatalf("confirmed push %#x never popped", v)
		}
	}
	for v := range popSeen {
		if !universe[v] {
			t.Fatalf("popped value %#x was never pushed", v)
		}
	}
	if n := srv.Pool().Len(); n != 0 {
		t.Fatalf("pool holds %d values after full drain", n)
	}
	if dq.MetricsEnabled {
		m := srv.Pool().Metrics()
		if m.Pushes() != m.Pops() || m.Pushes() != uint64(len(popSeen)) {
			t.Fatalf("metrics identity: pushes=%d pops=%d popped=%d",
				m.Pushes(), m.Pops(), len(popSeen))
		}
	}
}

// runConservationWorker drives one connection: batch pushes under its own
// key (value-tagged, globally unique), interleaved batch pops. Workers 60+
// are rude: halfway through they pipeline a final push burst, flush, and
// close without reading the responses — the landed-or-not limbo the
// conservation check must tolerate.
func runConservationWorker(addr string, w, rounds, batch int) connResult {
	var res connResult
	c, err := wire.Dial(addr)
	if err != nil {
		res.err = err
		return res
	}
	defer c.Close()

	key := uint64(w)
	seq := uint32(0)
	vs := make([]uint32, batch)
	next := func() uint32 {
		seq++
		return uint32(w)<<20 | seq
	}
	rude := w >= 60
	for r := 0; r < rounds; r++ {
		if rude && r == rounds/2 {
			for i := range vs {
				vs[i] = next()
			}
			req := wire.Request{Op: wire.OpPushN, Side: wire.Left, Key: key,
				Count: uint32(batch), Values: vs}
			if _, err := c.Send(&req); err != nil {
				res.err = err
				return res
			}
			if err := c.Flush(); err != nil {
				res.err = err
				return res
			}
			res.maybe = append(res.maybe, vs...)
			return res // abrupt close without Recv: responses are lost
		}
		for i := range vs {
			vs[i] = next()
		}
		n, err := c.PushN(wire.Left, key, vs)
		if err != nil && !errors.Is(err, dq.ErrFull) {
			res.err = err
			return res
		}
		res.confirmed = append(res.confirmed, vs[:n]...)
		if r%2 == 1 {
			got, err := c.PopN(wire.Right, key, batch)
			if err != nil {
				res.err = err
				return res
			}
			res.popped = append(res.popped, got...)
		}
	}
	return res
}

// TestRelaxedE2E serves through the d-choice relaxed front-end and checks
// the whole surface over the wire: conservation across concurrent
// connections (keys ignored, d-choice routing), the OpRelax snapshot
// (configuration gauges echoed, observed rank error within the bound),
// and OpLen keeping exact semantics against the relaxed Len estimate.
func TestRelaxedE2E(t *testing.T) {
	const (
		workers = 8
		rounds  = 60
		bound   = 64
	)
	srv, addr := startServer(t, Config{
		Shards:    4,
		Route:     dq.RouteRoundRobin,
		Steal:     true,
		MaxConns:  workers + 4,
		Relaxed:   true,
		Sample:    2,
		RankBound: bound,
		ShardOpts: []dq.Option{dq.WithNodeSize(8)},
	})
	if srv.Relaxed() == nil {
		t.Fatal("relaxed server did not build a Relaxed front-end")
	}

	type ledger struct {
		pushed []uint32
		popped []uint32
		err    error
	}
	results := make([]ledger, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := wire.Dial(addr)
			if err != nil {
				results[w].err = err
				return
			}
			defer c.Close()
			for r := 0; r < rounds; r++ {
				v := uint32(w)<<20 | uint32(r+1)
				if err := c.Push(wire.Left, uint64(w), v); err != nil {
					results[w].err = err
					return
				}
				results[w].pushed = append(results[w].pushed, v)
				if r%2 == 1 {
					got, ok, err := c.Pop(wire.Right, uint64(w))
					if err != nil {
						results[w].err = err
						return
					}
					if ok {
						results[w].popped = append(results[w].popped, got)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	want := make(map[uint32]bool)
	seen := make(map[uint32]bool)
	for w := range results {
		if results[w].err != nil {
			t.Fatalf("worker %d: %v", w, results[w].err)
		}
		for _, v := range results[w].pushed {
			want[v] = true
		}
		for _, v := range results[w].popped {
			if seen[v] {
				t.Fatalf("value %#x popped twice", v)
			}
			seen[v] = true
		}
	}

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// OpLen stays exact: the quiescent backlog equals pushes minus pops.
	n, err := c.Len()
	if err != nil {
		t.Fatal(err)
	}
	if backlog := len(want) - len(seen); n != backlog {
		t.Fatalf("Len = %d, want exact backlog %d", n, backlog)
	}
	for {
		vs, err := c.PopN(wire.Right, 0, 16)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) == 0 {
			break
		}
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("value %#x popped twice in drain", v)
			}
			seen[v] = true
		}
	}
	for v := range want {
		if !seen[v] {
			t.Fatalf("pushed value %#x never popped", v)
		}
	}
	for v := range seen {
		if !want[v] {
			t.Fatalf("popped value %#x never pushed", v)
		}
	}

	rs, err := c.Relax()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Sample != 2 || rs.Shards != 4 || rs.RankBound != bound {
		t.Fatalf("Relax gauges = %+v, want sample 2, shards 4, bound %d", rs, bound)
	}
	if dq.MetricsEnabled {
		if rs.RankMax > bound {
			t.Fatalf("observed rank error %d exceeds bound %d", rs.RankMax, bound)
		}
		m := srv.Relaxed().RelaxMetrics()
		if m.Pops == 0 {
			t.Fatal("no relaxed pops recorded a rank estimate")
		}
	}
}

// TestStrictServerRelaxSnapshot checks a non-relaxed server answers
// OpRelax with an all-zero snapshot instead of an error, so probes can
// always ask.
func TestStrictServerRelaxSnapshot(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 2, Route: dq.RouteRoundRobin, Steal: true, MaxConns: 2})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rs, err := c.Relax()
	if err != nil {
		t.Fatal(err)
	}
	if rs != (wire.RelaxStats{}) {
		t.Fatalf("strict server Relax = %+v, want zero snapshot", rs)
	}
}

// TestHandleFreelist runs far more sequential connections than MaxConns:
// registration is permanent per shard, so this only works if handles are
// parked and reborrowed across connections.
func TestHandleFreelist(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 2, Route: dq.RouteRoundRobin, Steal: true, MaxConns: 2})
	for i := 0; i < 20; i++ {
		c, err := wire.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Push(wire.Left, 0, uint32(i)); err != nil {
			t.Fatalf("conn %d push: %v", i, err)
		}
		if _, ok, err := c.Pop(wire.Right, 0); err != nil || !ok {
			t.Fatalf("conn %d pop: ok=%v err=%v", i, ok, err)
		}
		c.Flush()
		c.Close()
	}
}

// TestMalformedFrames checks the protocol edge: semantic garbage gets a
// StatusBad answer, framing garbage closes the connection, and neither
// disturbs later connections.
func TestMalformedFrames(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 1, Route: dq.RouteRoundRobin, Steal: false, MaxConns: 4})

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(&wire.Request{Op: 99})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusBad {
		t.Fatalf("unknown op status = %d, want StatusBad", resp.Status)
	}
	resp, err = c.Do(&wire.Request{Op: wire.OpPush, Side: 7, Count: 1, Values: []uint32{1}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusBad {
		t.Fatalf("bad side status = %d, want StatusBad", resp.Status)
	}
	c.Close()

	// A truncated frame (length prefix promising more than arrives) must
	// just drop the connection.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{0x00, 0x00, 0x00, 0x12, 0xde, 0xad})
	conn.Close()

	// Server still serves new connections.
	c2, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Ping(); err != nil {
		t.Fatalf("ping after malformed conn: %v", err)
	}
}

// TestGracefulDrain checks Shutdown semantics: polite clients finish and
// the drain returns nil; a lingering client forces the hard path, which
// reports the deadline and force-closes the connection.
func TestGracefulDrain(t *testing.T) {
	srv, err := NewServer(Config{Shards: 2, Route: dq.RouteRoundRobin, Steal: true, MaxConns: 4})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	// A polite client: works, then hangs up.
	c, err := wire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := c.Push(wire.Left, 0, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful Shutdown = %v, want nil", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve = %v", err)
	}
	if n := srv.Pool().Len(); n != 100 {
		t.Fatalf("pool lost values across drain: Len = %d, want 100", n)
	}
}

// TestHardDrainTimeout: a client that never hangs up trips the drain
// deadline; Shutdown force-closes it and reports ctx.Err().
func TestHardDrainTimeout(t *testing.T) {
	srv, err := NewServer(Config{Shards: 1, Route: dq.RouteRoundRobin, Steal: true, MaxConns: 2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	c, err := wire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// The client lingers: no Close, no more frames.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hard Shutdown = %v, want DeadlineExceeded", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve = %v", err)
	}
	// The force-closed connection surfaces as a transport error.
	if err := c.Ping(); err == nil {
		t.Fatal("ping on force-closed connection succeeded")
	}
}

// TestMemoryLimitStatusFull is the end-to-end memory-bound check: a shard
// built with WithMemoryLimit answers pushes past the node budget with
// StatusFull (surfacing as ErrFull at the client), pops make room again,
// and the connection stays healthy throughout.
func TestMemoryLimitStatusFull(t *testing.T) {
	_, addr := startServer(t, Config{
		Shards: 1, Route: dq.RouteRoundRobin, Steal: false, MaxConns: 4,
		ShardOpts: []dq.Option{
			dq.WithNodeSize(4),
			dq.WithReclamation(dq.ReclaimEpoch),
			dq.WithMemoryLimit(8 * core.NodeFootprint(4)),
		},
	})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var pushed int
	for i := 0; i < 200; i++ {
		err := c.Push(wire.Left, 0, uint32(i))
		if errors.Is(err, dq.ErrFull) {
			break
		}
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		pushed++
	}
	if pushed == 0 || pushed == 200 {
		t.Fatalf("pushed %d values: node budget never tripped as StatusFull", pushed)
	}
	for i := 0; i < pushed; i++ {
		if _, ok, err := c.Pop(wire.Right, 0); err != nil || !ok {
			t.Fatalf("pop %d of %d: ok=%v err=%v", i, pushed, ok, err)
		}
	}
	// The popped nodes sit in reclamation limbo — still charged against the
	// bound — until the connection's handle is flushed, which the server
	// does when the connection is released back to the freelist. Reconnect
	// and the budget is available again (recycled through the pool).
	c.Close()
	c2, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// The old connection's server-side Flush races with the reconnect;
	// retry until it lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c2.Push(wire.Left, 0, 7)
		if err == nil {
			break
		}
		if !errors.Is(err, dq.ErrFull) {
			t.Fatalf("push after reconnect: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("node budget still exhausted 5s after handle release")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v, ok, err := c2.Pop(wire.Left, 0); err != nil || !ok || v != 7 {
		t.Fatalf("pop after recovery = (%d, %v, %v)", v, ok, err)
	}
}
