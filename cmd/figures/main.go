// Command figures regenerates every figure and ablation from the paper's
// evaluation (see DESIGN.md's experiment index):
//
//	F14  throughput vs. threads, Deque access pattern, all structures
//	F15  throughput vs. threads, Stack access pattern, all structures
//	F16  throughput vs. threads, Queue access pattern, all structures
//	A1   OFDeque buffer-size sensitivity
//	A2   OFDeque elimination on/off per pattern
//	A3   single-thread throughput per structure
//	A4   elimination placement (off- vs. on-critical-path)
//
// For each experiment it writes a CSV under -out and prints an ASCII chart
// plus a qualitative shape check against the paper's claims.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

var (
	outDir   = flag.String("out", "figures_out", "directory for CSV output")
	duration = flag.Duration("duration", 500*time.Millisecond, "measured duration per trial")
	trials   = flag.Int("trials", 5, "trials per point (the paper uses 5)")
	threads  = flag.String("threads", "", "comma-separated thread counts (default: 1,2,4,... up to GOMAXPROCS)")
	only     = flag.String("fig", "all", "which experiment to run: 14, 15, 16, a1, a2, a3, a4, or all")
)

func main() {
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	counts := defaultThreads()
	if *threads != "" {
		counts = counts[:0]
		for _, f := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				fatal(fmt.Errorf("bad thread count %q", f))
			}
			counts = append(counts, n)
		}
	}
	fmt.Printf("# figures: GOMAXPROCS=%d threads=%v duration=%v trials=%d\n",
		runtime.GOMAXPROCS(0), counts, *duration, *trials)

	run := func(name string, f func([]int)) {
		if *only == "all" || *only == name {
			f(counts)
		}
	}
	run("14", func(c []int) { figure("figure14", bench.PatternDeque, c) })
	run("15", func(c []int) { figure("figure15", bench.PatternStack, c) })
	run("16", func(c []int) { figure("figure16", bench.PatternQueue, c) })
	run("a1", ablationBufferSize)
	run("a2", ablationElimination)
	run("a3", ablationSingleThread)
	run("a4", ablationElimPlacement)
	run("a5", ablationLatency)
}

func defaultThreads() []int {
	max := runtime.GOMAXPROCS(0)
	var out []int
	for t := 1; t < max; t *= 2 {
		out = append(out, t)
	}
	out = append(out, max)
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// collect sweeps each named structure (or custom factory) over counts into
// a bench.Table.
func collect(pattern bench.Pattern, counts []int, names []string,
	custom map[string]bench.Factory) *bench.Table {
	tbl := &bench.Table{Threads: counts}
	for _, name := range names {
		cfg := bench.Config{
			Pattern:  pattern,
			Duration: *duration,
			Trials:   *trials,
			Pin:      true,
			Seed:     7,
		}
		if f, ok := custom[name]; ok {
			cfg.Factory = f
		} else {
			cfg.Structure = name
		}
		var points []float64
		for _, t := range counts {
			c := cfg
			c.Threads = t
			r, err := bench.Run(c)
			if err != nil {
				fatal(err)
			}
			points = append(points, r.Summary.Mean)
			fmt.Printf("  %-16s %-6s t=%-3d %14.0f ops/s\n", name, pattern, t, r.Summary.Mean)
		}
		if err := tbl.AddRow(name, points); err != nil {
			fatal(err)
		}
	}
	return tbl
}

func writeCSV(file string, tbl *bench.Table) {
	f, err := os.Create(filepath.Join(*outDir, file))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := tbl.WriteCSV(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", filepath.Join(*outDir, file))
}

// figure runs one of F14/F15/F16 across the paper's structures.
func figure(name string, pattern bench.Pattern, counts []int) {
	fmt.Printf("== %s (%s pattern) ==\n", name, pattern)
	tbl := collect(pattern, counts, bench.PaperStructures, nil)
	writeCSV(name+".csv", tbl)
	fmt.Println()
	fmt.Print(tbl.AsciiChart(name, 50))
	fmt.Println()
	shapeCheck(name, pattern, tbl)
}

// shapeCheck prints pass/fail for the paper's qualitative claims.
func shapeCheck(name string, pattern bench.Pattern, tbl *bench.Table) {
	of, ofe := tbl.Get("of"), tbl.Get("of-elim")
	mm, st := tbl.Get("mm"), tbl.Get("st")
	fc := tbl.Get("fc")
	var checks []bench.ShapeCheck
	add := func(label string, ok bool) {
		checks = append(checks, bench.ShapeCheck{Label: label, OK: ok})
	}
	add("OF single-thread beats MM and ST", of.At(0) > mm.At(0) && of.At(0) > st.At(0))
	switch pattern {
	case bench.PatternQueue:
		add("elimination does not help Queue (of >= of-elim)", of.Final() >= ofe.Final()*0.8)
		add("FC competitive at max threads (fc within 3x of best)",
			fc.Final()*3 >= tbl.MaxFinal())
	default:
		add("elimination helps at max threads (of-elim > of)", ofe.Final() > of.Final())
		add("OF-elim at or near the top (within 1.5x of best)",
			ofe.Final()*1.5 >= tbl.MaxFinal())
	}
	fmt.Print(bench.FormatShapeChecks(name, checks))
}

// ablationBufferSize is A1: the paper reports "no significant performance
// impact for different buffer sizes".
func ablationBufferSize(counts []int) {
	fmt.Println("== ablation A1: OFDeque buffer size ==")
	sizes := []int{64, 256, 1024, 4096}
	names := make([]string, len(sizes))
	custom := map[string]bench.Factory{}
	for i, sz := range sizes {
		names[i] = fmt.Sprintf("of-sz%d", sz)
		custom[names[i]] = bench.OFWithNodeSize(sz)
	}
	tbl := collect(bench.PatternDeque, counts, names, custom)
	writeCSV("ablation_buffer_size.csv", tbl)
	fmt.Print(tbl.AsciiChart("A1 buffer size", 50))
}

// ablationElimination is A2: elimination on/off per access pattern.
func ablationElimination(counts []int) {
	fmt.Println("== ablation A2: elimination per pattern ==")
	for _, p := range bench.Patterns {
		tbl := collect(p, counts, []string{"of", "of-elim"}, nil)
		writeCSV(fmt.Sprintf("ablation_elimination_%s.csv", p), tbl)
		fmt.Print(tbl.AsciiChart(fmt.Sprintf("A2 elimination (%s)", p), 50))
	}
}

// ablationSingleThread is A3: single-thread throughput of every structure.
func ablationSingleThread(_ []int) {
	fmt.Println("== ablation A3: single-thread throughput ==")
	one := []int{1}
	tbl := collect(bench.PatternDeque, one, bench.PaperStructures, nil)
	writeCSV("ablation_single_thread.csv", tbl)
	fmt.Print(tbl.AsciiChart("A3 single thread", 50))
}

// ablationElimPlacement is A4: the paper's off-critical-path elimination
// versus the naive linger-first design.
func ablationElimPlacement(counts []int) {
	fmt.Println("== ablation A4: elimination placement ==")
	names := []string{"of-elim", "of-elim-naive"}
	tbl := collect(bench.PatternStack, counts, names, nil)
	writeCSV("ablation_elim_placement.csv", tbl)
	fmt.Print(tbl.AsciiChart("A4 elimination placement (stack)", 50))
}

// ablationLatency is A5: per-operation latency percentiles. The paper's
// abstract claims OFDeque has "no pathological long-latency scenarios" and
// its related-work section says the time-stamped deque buys throughput "at
// the expense of intentionally elevated latency" — here with a 10µs
// interval delay for the ts-hw-delay row.
func ablationLatency(counts []int) {
	fmt.Println("== ablation A5: operation latency ==")
	threads := counts[len(counts)-1]
	type row struct {
		name    string
		factory bench.Factory
	}
	rows := []row{
		{"of", nil}, {"of-elim", nil}, {"sgl", nil}, {"fc", nil},
		{"mm", nil}, {"st", nil}, {"ts-fai", nil}, {"ts-hw", nil},
		{"ts-hw-delay10us", bench.TSHWWithDelay(10 * time.Microsecond)},
	}
	f, err := os.Create(filepath.Join(*outDir, "ablation_latency.csv"))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	fmt.Fprintln(f, "structure,threads,mean_ns,p50_ns,p90_ns,p99_ns,p999_ns,max_ns")
	for _, r := range rows {
		cfg := bench.Config{
			Structure: r.name,
			Factory:   r.factory,
			Pattern:   bench.PatternDeque,
			Threads:   threads,
			Duration:  *duration,
			Prefill:   1024,
			Pin:       true,
			Seed:      7,
		}
		if r.factory != nil {
			cfg.Structure = ""
		}
		res, err := bench.RunLatency(cfg)
		if err != nil {
			fatal(err)
		}
		h := res.Hist
		fmt.Printf("  %-16s %s\n", r.name, h)
		fmt.Fprintf(f, "%s,%d,%.0f,%d,%d,%d,%d,%d\n",
			r.name, threads, h.Mean(), h.Quantile(0.5), h.Quantile(0.9),
			h.Quantile(0.99), h.Quantile(0.999), h.Max())
	}
	fmt.Printf("wrote %s\n", filepath.Join(*outDir, "ablation_latency.csv"))
}
