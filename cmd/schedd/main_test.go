package main

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	dq "repro"
	"repro/internal/wire"
)

// startServer runs an in-process schedd on an ephemeral port and returns
// it with its address. The server is shut down with the test.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// schedResult is one worker's ledger: jobs the server admitted, jobs it
// explicitly shed with StatusFull (never admitted, must never pop), jobs
// this worker popped from either end, and admissions whose responses
// were thrown away by an abrupt disconnect (landed-or-not unknown).
type schedResult struct {
	admitted []uint32
	shed     int
	popped   []uint32
	maybe    []uint32
	err      error
}

// TestSchedE2EConservation is the scheduler's conservation gate: 64
// concurrent connections submit jobs across all priority bands into
// tiny-capacity bands — an ErrFull shedding storm — while popping from
// both ends, and a few clients hang up mid-stream without reading their
// final responses. Afterwards the queue drains and every submitted job
// must be exactly-once popped or explicitly shed: admitted jobs pop
// exactly once, shed jobs never appear, nothing pops twice, nothing
// appears from thin air.
func TestSchedE2EConservation(t *testing.T) {
	const (
		workers = 64
		rounds  = 50
		bands   = 8
		bound   = 2
	)
	srv, addr := startServer(t, Config{
		Bands:     bands,
		BandBound: bound,
		Choice:    2,
		MaxConns:  workers + 4,
		ShardOpts: []dq.Option{
			dq.WithNodeSize(8),
			dq.WithCapacity(64), // per band: 64 submitters overrun this fast
		},
	})

	results := make([]schedResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = runSchedWorker(addr, w, rounds)
		}(w)
	}
	wg.Wait()

	popSeen := make(map[uint32]bool)
	record := func(v uint32) {
		if popSeen[v] {
			t.Fatalf("job %#x popped twice", v)
		}
		popSeen[v] = true
	}
	universe := make(map[uint32]bool) // everything that may legally appear
	admitted := make(map[uint32]bool)
	totalShed := 0
	for w := range results {
		r := &results[w]
		if r.err != nil {
			t.Fatalf("worker %d: %v", w, r.err)
		}
		for _, v := range r.admitted {
			admitted[v] = true
			universe[v] = true
		}
		for _, v := range r.maybe {
			universe[v] = true
		}
		for _, v := range r.popped {
			record(v)
		}
		totalShed += r.shed
	}
	if totalShed == 0 {
		t.Fatal("no job was shed: the storm never tripped StatusFull, gate is vacuous")
	}

	// Quiescent drain, alternating ends: PopMin/PopMax return empty only
	// after every band came up empty.
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; ; i++ {
		var (
			v  uint32
			ok bool
		)
		if i%2 == 0 {
			v, _, ok, err = c.PopMin()
		} else {
			v, _, ok, err = c.PopMax()
		}
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if _, _, ok, err := c.PopMin(); err != nil {
				t.Fatal(err)
			} else if ok {
				t.Fatal("one end certified empty while the other still held work")
			}
			break
		}
		record(v)
	}

	for v := range admitted {
		if !popSeen[v] {
			t.Fatalf("admitted job %#x never popped", v)
		}
	}
	for v := range popSeen {
		if !universe[v] {
			t.Fatalf("popped job %#x was never submitted", v)
		}
	}
	if n := srv.DEPQ().LenExact(); n != 0 {
		t.Fatalf("queue holds %d jobs after full drain", n)
	}

	// The inversion gate: the observed worst case must respect the
	// configured band bound, end to end over the wire.
	ds, err := c.Depq()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Bands != bands || ds.BandBound != bound || ds.Choice != 2 {
		t.Fatalf("Depq gauges = %+v, want bands %d bound %d choice 2", ds, bands, bound)
	}
	if dq.MetricsEnabled {
		if ds.InvMax > bound {
			t.Fatalf("observed inversion %d exceeds band bound %d", ds.InvMax, bound)
		}
		if m := srv.DEPQ().DepqMetrics(); m.Pops() == 0 {
			t.Fatal("no pop recorded an inversion estimate")
		}
	}
}

// runSchedWorker drives one connection: submit jobs across the band
// spectrum (value-tagged, globally unique), interleaving PopMin (worker
// role) and PopMax (shedder role). Workers 60+ are rude: halfway through
// they pipeline a final submit burst, flush, and close without reading
// the responses — those jobs may or may not have been admitted.
func runSchedWorker(addr string, w, rounds int) schedResult {
	var res schedResult
	c, err := wire.Dial(addr)
	if err != nil {
		res.err = err
		return res
	}
	defer c.Close()

	seq := uint32(0)
	next := func() uint32 {
		seq++
		return uint32(w)<<20 | seq
	}
	rude := w >= 60
	for r := 0; r < rounds; r++ {
		if rude && r == rounds/2 {
			for i := 0; i < 8; i++ {
				v := next()
				req := wire.Request{Op: wire.OpPushPrio, Key: uint64(i % 8), Count: 1, Values: []uint32{v}}
				if _, err := c.Send(&req); err != nil {
					res.err = err
					return res
				}
				res.maybe = append(res.maybe, v)
			}
			if err := c.Flush(); err != nil {
				res.err = err
				return res
			}
			return res // abrupt close without Recv: responses are lost
		}
		v := next()
		prio := uint64((w + r) % 8)
		err := c.PushPrio(prio, v)
		switch {
		case err == nil:
			res.admitted = append(res.admitted, v)
		case errors.Is(err, dq.ErrFull):
			res.shed++ // explicitly shed: never admitted, must never pop
		default:
			res.err = err
			return res
		}
		if r%2 == 1 {
			var (
				got uint32
				ok  bool
			)
			if r%4 == 1 {
				got, _, ok, err = c.PopMin()
			} else {
				got, _, ok, err = c.PopMax()
			}
			if err != nil {
				res.err = err
				return res
			}
			if ok {
				res.popped = append(res.popped, got)
			}
		}
	}
	return res
}

// TestSchedStrictPriority serves with band-bound 0 — a strict priority
// scheduler — and checks the wire-visible ordering contract on a
// quiescent queue: PopMin returns jobs in ascending band order, FIFO
// within a band; PopMax descending, LIFO within a band.
func TestSchedStrictPriority(t *testing.T) {
	_, addr := startServer(t, Config{Bands: 4, BandBound: 0, MaxConns: 4})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for seq := uint32(0); seq < 2; seq++ {
		for b := uint64(0); b < 4; b++ {
			if err := c.PushPrio(b, uint32(b)*100+seq); err != nil {
				t.Fatal(err)
			}
		}
	}
	for b := uint32(0); b < 2; b++ {
		for seq := uint32(0); seq < 2; seq++ {
			v, band, ok, err := c.PopMin()
			if err != nil || !ok || band != b || v != b*100+seq {
				t.Fatalf("PopMin = (%d, %d, %v, %v), want (%d, %d, true, nil)", v, band, ok, err, b*100+seq, b)
			}
		}
	}
	for b := uint32(3); b >= 2; b-- {
		for seq := uint32(1); ; seq-- {
			v, band, ok, err := c.PopMax()
			if err != nil || !ok || band != b || v != b*100+seq {
				t.Fatalf("PopMax = (%d, %d, %v, %v), want (%d, %d, true, nil)", v, band, ok, err, b*100+seq, b)
			}
			if seq == 0 {
				break
			}
		}
	}
	if _, _, ok, err := c.PopMin(); err != nil || ok {
		t.Fatalf("PopMin after drain = (ok %v, err %v), want empty", ok, err)
	}
}

// TestSchedRejectsPoolOps checks the op-set boundary: the plain deque
// ops served by cmd/dequed answer StatusBad here instead of silently
// succeeding around the priority contract.
func TestSchedRejectsPoolOps(t *testing.T) {
	_, addr := startServer(t, Config{Bands: 2, MaxConns: 2})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, req := range []wire.Request{
		{Op: wire.OpPush, Side: wire.Left, Count: 1, Values: []uint32{1}},
		{Op: wire.OpPop, Side: wire.Right},
		{Op: wire.OpPushN, Side: wire.Left, Count: 2, Values: []uint32{1, 2}},
		{Op: wire.OpPopN, Side: wire.Right, Count: 4},
		{Op: wire.OpRelax},
		{Op: 99},
	} {
		resp, err := c.Do(&req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != wire.StatusBad {
			t.Fatalf("op %d: status %d, want StatusBad", req.Op, resp.Status)
		}
	}
	// The connection stays healthy for scheduler ops.
	if err := c.PushPrio(0, 7); err != nil {
		t.Fatal(err)
	}
	if v, band, ok, err := c.PopMin(); err != nil || !ok || v != 7 || band != 0 {
		t.Fatalf("PopMin = (%d, %d, %v, %v), want (7, 0, true, nil)", v, band, ok, err)
	}
}

// TestSchedHandleFreelist runs far more sequential connections than
// MaxConns: registration is permanent per band, so this only works if
// handles are parked and reborrowed across connections.
func TestSchedHandleFreelist(t *testing.T) {
	_, addr := startServer(t, Config{Bands: 2, MaxConns: 2})
	for i := 0; i < 20; i++ {
		c, err := wire.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.PushPrio(uint64(i%2), uint32(i)); err != nil {
			t.Fatalf("conn %d push: %v", i, err)
		}
		if _, _, ok, err := c.PopMin(); err != nil || !ok {
			t.Fatalf("conn %d pop: ok=%v err=%v", i, ok, err)
		}
		c.Flush()
		c.Close()
	}
}

// TestSchedGracefulDrain checks jobs survive a polite shutdown: what was
// admitted before the drain is still resident after it.
func TestSchedGracefulDrain(t *testing.T) {
	srv, err := NewServer(Config{Bands: 4, MaxConns: 4})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	c, err := wire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := c.PushPrio(uint64(i%4), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful Shutdown = %v, want nil", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve = %v", err)
	}
	if n := srv.DEPQ().LenExact(); n != 100 {
		t.Fatalf("queue lost jobs across drain: LenExact = %d, want 100", n)
	}
}
