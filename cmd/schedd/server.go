package main

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"time"

	dq "repro"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Config collects everything a Server needs. The zero value is not
// usable; main (and the tests) fill it from flags.
type Config struct {
	Bands        int           // priority bands (= pool shards behind the DEPQ)
	BandBound    int           // worst-case priority inversion in bands (-1 = unbounded)
	Choice       int           // d-choice width inside the band window
	MaxConns     int           // concurrent connection (= DEPQ handle) cap
	DrainTimeout time.Duration // Shutdown grace before hard-cancel (0 = forever)
	ShardOpts    []dq.Option   // forwarded to every band (capacity, reclamation, ...)
}

// Server owns a DEPQ[uint32] and serves the scheduler subset of the wire
// protocol over TCP: OpPushPrio admits jobs by priority band (StatusFull
// is the load-shedding answer), OpPopMin hands workers the most urgent
// job, OpPopMax is the drop channel under overload, and OpDepq reports
// the observed priority-inversion snapshot. Connection lifecycle —
// goroutine per connection, permanent-registration handle freelist,
// pipelined strictly-ordered responses, graceful drain — matches
// cmd/dequed exactly; only the operation set differs.
type Server struct {
	cfg Config
	q   *dq.DEPQ[uint32]

	// ctx cancels in-flight blocked operations on hard shutdown.
	ctx    context.Context
	cancel context.CancelFunc

	// Handle freelist: acquire prefers a parked handle, registers a new
	// one while under the cap, and otherwise waits for a connection to
	// finish. cap(handles) == MaxConns so release never blocks.
	handles    chan connHandle
	hmu        sync.Mutex
	registered int

	// latReg holds per-connection service-time recorders (frame decoded →
	// reply flushed). Band-level op classes live in the DEQP's pool;
	// LatencySnapshot merges both.
	latReg obs.LatRegistry

	lnMu sync.Mutex
	ln   net.Listener

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer validates cfg and builds the DEPQ. MaxThreads for every band
// is derived from MaxConns (+1 for the process's own metrics/drain use),
// so callers need not pass it in ShardOpts.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Bands <= 0 {
		cfg.Bands = 8
	}
	if cfg.Choice <= 0 {
		cfg.Choice = 2
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 64
	}
	opts := append([]dq.Option{dq.WithMaxThreads(cfg.MaxConns + 1)}, cfg.ShardOpts...)
	depqOpts := []dq.DEPQOption{
		dq.WithBands(cfg.Bands),
		dq.WithBandChoice(cfg.Choice),
		dq.WithDEPQPool(dq.WithShardOptions(opts...)),
	}
	if cfg.BandBound >= 0 {
		depqOpts = append(depqOpts, dq.WithBandBound(cfg.BandBound))
	}
	q, err := dq.NewDEPQChecked[uint32](depqOpts...)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:     cfg,
		q:       q,
		ctx:     ctx,
		cancel:  cancel,
		handles: make(chan connHandle, cfg.MaxConns),
		conns:   make(map[net.Conn]struct{}),
	}, nil
}

// DEPQ exposes the backing queue for the final metrics snapshot and tests.
func (s *Server) DEPQ() *dq.DEPQ[uint32] { return s.q }

// LatencySnapshot returns the exact merged latency histograms of the
// whole service: every band's per-op classes, the pool-level classes,
// and the server's per-connection service times.
func (s *Server) LatencySnapshot() *dq.LatSnapshotSet {
	set := s.latReg.Merge()
	set.Merge(s.q.LatencySnapshot())
	return set
}

// connHandle is one connection's DEPQ accessor plus its service-time
// recorder.
type connHandle struct {
	dh  *dq.DEPQHandle[uint32]
	lat *obs.LatRec // single-writer service-time histogram
}

// Serve accepts connections on ln until the listener closes (Shutdown
// does that). A closed listener is a clean return, not an error.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
		}()
	}
}

// Shutdown drains gracefully: the listener closes (no new connections),
// existing connections keep being answered until they hang up, and only
// once ctx expires are in-flight operations cancelled and connections
// force-closed. Returns nil on a clean drain, ctx.Err() on the hard path.
func (s *Server) Shutdown(ctx context.Context) error {
	s.lnMu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.lnMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Hard stop: abort blocked Ctx operations, then unblock reads.
	s.cancel()
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	<-done
	return ctx.Err()
}

// acquireHandle borrows a DEPQ handle for one connection's lifetime.
func (s *Server) acquireHandle() (connHandle, error) {
	select {
	case h := <-s.handles:
		return h, nil
	default:
	}
	s.hmu.Lock()
	if s.registered < s.cfg.MaxConns {
		s.registered++
		s.hmu.Unlock()
		return connHandle{dh: s.q.Register(), lat: s.latReg.NewRec()}, nil
	}
	s.hmu.Unlock()
	select {
	case h := <-s.handles:
		return h, nil
	case <-s.ctx.Done():
		return connHandle{}, s.ctx.Err()
	}
}

// serveConn runs one connection's request loop; see cmd/dequed for the
// pipelining contract (flush only when the read buffer runs dry).
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	h, err := s.acquireHandle()
	if err != nil {
		return // shutting down
	}
	defer func() { h.dh.Flush(); s.handles <- h }()

	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	var (
		req     wire.Request
		resp    wire.Response
		scratch []byte
		out     []byte
	)
	for {
		scratch, err = wire.ReadRequest(br, &req, scratch)
		if err != nil {
			return
		}
		var svc time.Time
		if obs.Enabled {
			svc = time.Now()
		}
		resp.Tag = req.Tag
		resp.Count = 0
		resp.Values = resp.Values[:0]
		s.apply(h, &req, &resp)
		out = wire.AppendResponse(out[:0], &resp)
		if _, err := bw.Write(out); err != nil {
			return
		}
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
		if obs.Enabled {
			h.lat.Record(obs.LatService, uint64(time.Since(svc)))
		}
	}
}

// clamp32 saturates a uint64 gauge into a wire uint32.
func clamp32(v uint64) uint32 {
	if v > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(v)
}

// clampBand saturates the wire priority key into an int band. The DEPQ
// clamps again into [0, bands); this only guards the uint64→int cast.
func clampBand(key uint64) int {
	const maxInt = int(^uint(0) >> 1)
	if key > uint64(maxInt) {
		return maxInt
	}
	return int(key)
}

// apply executes one validated request against the connection's handle
// and fills resp. Statuses follow wire.StatusOf: the deque's error
// contract crosses the wire unchanged — StatusFull on OpPushPrio IS the
// load-shedding decision, made by the band's capacity bound.
func (s *Server) apply(h connHandle, req *wire.Request, resp *wire.Response) {
	if st := req.Validate(); st != wire.StatusOK {
		resp.Status = st
		return
	}
	switch req.Op {
	case wire.OpPing:
		resp.Status = wire.StatusOK

	case wire.OpLen:
		resp.Status = wire.StatusOK
		resp.Count = uint32(s.q.LenExact())

	case wire.OpDepq:
		resp.Status = wire.StatusOK
		m := s.q.DepqMetrics()
		resp.Count = clamp32(m.InvMax)
		resp.Values = append(resp.Values,
			clamp32(m.BandBound), clamp32(m.Bands), clamp32(m.Choice),
			clamp32(uint64(m.MeanInv()*1000)))

	case wire.OpStats:
		resp.Status = wire.StatusOK
		resp.Values, resp.Count = wire.AppendOpStats(resp.Values, s.LatencySnapshot())

	case wire.OpPushPrio:
		err := h.dh.PushCtx(s.ctx, req.Values[0], clampBand(req.Key))
		resp.Status = wire.StatusOf(err)
		if err == nil {
			resp.Count = 1
		}

	case wire.OpPopMin, wire.OpPopMax:
		var (
			v    uint32
			band int
			ok   bool
			err  error
		)
		if req.Op == wire.OpPopMin {
			v, band, ok, err = h.dh.PopMinCtx(s.ctx)
		} else {
			v, band, ok, err = h.dh.PopMaxCtx(s.ctx)
		}
		switch {
		case err != nil:
			resp.Status = wire.StatusOf(err)
		case !ok:
			resp.Status = wire.StatusEmpty
		default:
			resp.Status = wire.StatusOK
			resp.Count = 2
			resp.Values = append(resp.Values, v, uint32(band))
		}

	default:
		// The plain pool ops (OpPush…OpPopN, OpRelax) belong to cmd/dequed;
		// answering them here would silently bypass the priority contract.
		resp.Status = wire.StatusBad
	}
}
