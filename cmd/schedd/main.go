// Command schedd serves a deadline-aware job scheduler over TCP: a
// DEPQ[uint32] — K priority bands over the sharded deque pool, band 0
// most urgent — spoken through the internal/wire protocol's DEPQ frames.
// Producers submit jobs with OpPushPrio (priority in the key field);
// workers take the most urgent job with OpPopMin; an overload controller
// drops the most shed-able job with OpPopMax. Admission control is the
// deque's own capacity bound: a full band answers STATUS_FULL, which IS
// the load-shedding decision — the client retries, degrades, or drops.
//
// The scheduler's priority relaxation is bounded and measured:
// -band-bound caps how many priority classes a pop may skip, and OpDepq
// (or /metrics) reports the inversion actually observed.
//
// Lifecycle matches cmd/dequed: SIGINT/SIGTERM starts a graceful drain,
// and a final Prometheus-format snapshot goes to stderr before exit.
//
// Example:
//
//	schedd -addr :7421 -bands 8 -band-bound 2 -metrics localhost:7422 &
//	dqload -addr localhost:7421 -deadline -conns 8 -duration 5s
//	curl -s localhost:7422/metrics | grep depq_inversion
//	kill -TERM %1   # drains, dumps metrics, exits 0
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	dq "repro"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7421", "TCP listen address (use :0 with -addr-file for an ephemeral port)")
		addrFile = flag.String("addr-file", "", "write the bound listen address to this file once listening")
		bands    = flag.Int("bands", 8, "priority bands (band 0 most urgent; one pool shard each)")
		bound    = flag.Int("band-bound", -1, "worst-case priority inversion in bands (0 = strict priority, -1 = unbounded)")
		choice   = flag.Int("choice", 2, "d-choice width: bands sampled inside the inversion window per pop")
		capacity = flag.Int("capacity", 0, "per-band job capacity (0 = default); full bands shed with STATUS_FULL")
		maxconns = flag.Int("maxconns", 64, "concurrent connection cap (DEPQ handles are pooled up to this)")
		reclaim  = flag.String("reclaim", "gc", "node reclamation: gc, hazard, or epoch (recycling)")
		metrics  = flag.String("metrics", "", "serve Prometheus /metrics and /debug/flightrecorder on this HTTP address (empty disables)")
		fdump    = flag.Duration("flight-dump", 0, "auto-dump the flight recorder to stderr on watchdog distress, rate-limited to one dump per this interval (0 disables)")
		drain    = flag.Duration("drain-timeout", 5*time.Second, "graceful drain window on SIGTERM before in-flight ops are cancelled")
	)
	flag.Parse()

	rpol, err := dq.ParseReclamation(*reclaim)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(2)
	}
	var shardOpts []dq.Option
	if *capacity > 0 {
		shardOpts = append(shardOpts, dq.WithCapacity(*capacity))
	}
	if rpol != dq.ReclaimGC {
		shardOpts = append(shardOpts, dq.WithReclamation(rpol))
	}
	srv, err := NewServer(Config{
		Bands:        *bands,
		BandBound:    *bound,
		Choice:       *choice,
		MaxConns:     *maxconns,
		DrainTimeout: *drain,
		ShardOpts:    shardOpts,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "schedd:", err)
			os.Exit(1)
		}
	}

	if *fdump > 0 {
		srv.DEPQ().SetFlightDump(os.Stderr, *fdump)
	}

	// Optional scrape endpoint: a fresh merged snapshot per request.
	var msrv *http.Server
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := dq.WriteMetricsProm(rw, "schedd", srv.DEPQ().Metrics()); err != nil {
				fmt.Fprintln(os.Stderr, "schedd: write /metrics:", err)
			}
			if err := dq.WriteLatMetricsProm(rw, "schedd", srv.LatencySnapshot()); err != nil {
				fmt.Fprintln(os.Stderr, "schedd: write /metrics:", err)
			}
			if err := dq.WriteDepqMetricsProm(rw, "schedd", srv.DEPQ().DepqMetrics()); err != nil {
				fmt.Fprintln(os.Stderr, "schedd: write /metrics:", err)
			}
		})
		mux.HandleFunc("/debug/flightrecorder", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(rw)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]any{
				"records": srv.DEPQ().FlightRecords(),
			}); err != nil {
				fmt.Fprintln(os.Stderr, "schedd: write /debug/flightrecorder:", err)
			}
		})
		msrv = &http.Server{Addr: *metrics, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "schedd: metrics server:", err)
			}
		}()
	}

	fmt.Printf("schedd: %d bands, band-bound=%d choice=%d maxconns=%d on %s\n",
		srv.DEPQ().Bands(), srv.DEPQ().BandBound(), srv.DEPQ().Choice(), *maxconns, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	exit := 0
	select {
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills
		fmt.Fprintf(os.Stderr, "schedd: draining (up to %s)\n", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "schedd: hard stop after drain timeout:", err)
		}
		cancel()
	case err := <-errc:
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedd:", err)
			exit = 1
		}
	}
	if msrv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		msrv.Shutdown(sctx)
		cancel()
	}

	fmt.Fprintln(os.Stderr, "schedd: final metrics snapshot")
	if err := dq.WriteMetricsProm(os.Stderr, "schedd", srv.DEPQ().Metrics()); err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
	}
	if err := dq.WriteDepqMetricsProm(os.Stderr, "schedd", srv.DEPQ().DepqMetrics()); err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
	}
	os.Exit(exit)
}
